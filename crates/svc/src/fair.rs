//! Per-tenant admission policy and the weighted fair submission queue.
//!
//! [`TenantPolicy`] is the operator-facing configuration: per-tenant
//! slot quotas (admission-time back-pressure), per-tenant dequeue
//! weights, and an optional default quota for tenants not named
//! explicitly. When the policy is inactive — no quota, no weight, no
//! default — the service routes every request through one implicit
//! lane and behavior is bit-identical to the plain FIFO queue.
//!
//! [`FairQueue`] replaces the single `BoundedQueue` pop order with
//! deterministic weighted round-robin across per-tenant FIFO lanes:
//!
//! * **Lanes** are created on first push, in first-push order, and
//!   never reordered. Untagged traffic shares one implicit lane.
//! * **Pop order** is a pure function of the push/pop sequence: a
//!   cursor walks the lanes in creation order; on entering a lane its
//!   credit recharges to its weight, and each pop from the lane spends
//!   one credit. No clocks, no hashes, no randomness — identical
//!   serial submission streams reproduce identical dequeue orders
//!   bit for bit.
//! * **No starvation**: every nonempty lane is visited — and served at
//!   least once — within one full cursor cycle, so a lane waits at most
//!   one weighted round (the sum of the other lanes' weights) for
//!   service no matter how fast another tenant submits.
//! * **FIFO within a lane**: each lane is a `VecDeque`; tenant-local
//!   ordering is exactly the old global ordering.
//! * **Work conservation**: empty lanes are skipped without consuming
//!   the round, so idle tenants donate their share instead of idling
//!   the pool.
//!
//! Capacity and shutdown semantics mirror
//! [`BoundedQueue`](crate::queue::BoundedQueue): `try_push` sheds when
//! the *total* queued count is at capacity, `pop` blocks until an item
//! arrives or the queue is closed and drained.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

use crate::queue::PushError;

/// Per-tenant admission quotas and fair-dequeue weights.
///
/// Inactive by default: an empty policy changes nothing — no quota is
/// enforced and every request shares one dequeue lane, preserving the
/// untenanted single-user pop order byte for byte.
#[derive(Debug, Clone)]
pub struct TenantPolicy {
    /// Per-tenant slot quotas: the maximum number of requests a tenant
    /// may hold admitted-but-unfinished (queued + in flight) at once.
    /// Tenants not listed fall back to [`TenantPolicy::default_quota`].
    pub quotas: BTreeMap<String, u64>,
    /// Per-tenant dequeue weights (items served per round-robin visit).
    /// Tenants not listed — and the untagged lane — weigh 1.
    pub weights: BTreeMap<String, u64>,
    /// Quota applied to tenants without an explicit entry. `None`
    /// means unlimited.
    pub default_quota: Option<u64>,
    /// Distinct tenants tracked in the accounting table before
    /// overflow tags fold into the shared `other` row (the cap that
    /// keeps a client cycling random tags from growing service memory
    /// without bound).
    pub max_tracked: usize,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        TenantPolicy {
            quotas: BTreeMap::new(),
            weights: BTreeMap::new(),
            default_quota: None,
            max_tracked: TenantPolicy::DEFAULT_MAX_TRACKED,
        }
    }
}

impl TenantPolicy {
    /// Default cap on distinct tracked tenants.
    pub const DEFAULT_MAX_TRACKED: usize = 64;

    /// Row name overflow tenants fold into once the tracking cap is
    /// reached.
    pub const OVERFLOW_TENANT: &'static str = "other";

    /// True when any quota, weight, or default quota is configured —
    /// i.e. when admission control and fair dequeueing are on. An
    /// inactive policy leaves wire behavior identical to a service
    /// without tenant support.
    pub fn is_active(&self) -> bool {
        !self.quotas.is_empty() || !self.weights.is_empty() || self.default_quota.is_some()
    }

    /// The slot quota applied to `tenant` (`None` = unlimited).
    pub fn quota_for(&self, tenant: &str) -> Option<u64> {
        self.quotas.get(tenant).copied().or(self.default_quota)
    }

    /// The dequeue weight of `tenant` (≥ 1).
    pub fn weight_for(&self, tenant: &str) -> u64 {
        self.weights.get(tenant).copied().unwrap_or(1).max(1)
    }
}

struct Lane<T> {
    weight: u64,
    /// Remaining pops before the cursor must move on; recharged to
    /// `weight` each time the cursor enters the lane.
    credit: u64,
    items: VecDeque<T>,
}

struct Inner<T> {
    lanes: Vec<Lane<T>>,
    /// Lane index by key — lookup only; iteration always walks `lanes`
    /// in creation order so pop order never depends on hash order.
    index: HashMap<Option<String>, usize>,
    cursor: usize,
    len: usize,
    closed: bool,
}

/// Bounded MPMC queue with deterministic weighted round-robin dequeue
/// across per-tenant FIFO lanes. See the module docs for the fairness
/// and determinism guarantees.
pub struct FairQueue<T> {
    inner: Mutex<Inner<T>>,
    notify: Condvar,
    capacity: usize,
    weights: BTreeMap<String, u64>,
}

impl<T> FairQueue<T> {
    /// A queue admitting at most `capacity` items in total (minimum 1),
    /// serving lanes by `weights` (absent lanes weigh 1).
    pub fn new(capacity: usize, weights: BTreeMap<String, u64>) -> Self {
        FairQueue {
            inner: Mutex::new(Inner {
                lanes: Vec::new(),
                index: HashMap::new(),
                cursor: 0,
                len: 0,
                closed: false,
            }),
            notify: Condvar::new(),
            capacity: capacity.max(1),
            weights,
        }
    }

    /// Total admission capacity (shared across lanes).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total queued items across lanes (racy by nature; gauges and
    /// hints only).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Queued items in `lane` right now.
    pub fn lane_len(&self, lane: Option<&str>) -> usize {
        let inner = self.inner.lock().expect("queue lock");
        inner.index.get(&lane.map(str::to_string)).map_or(0, |&i| inner.lanes[i].items.len())
    }

    /// Non-blocking admission into `lane` (`None` = the implicit
    /// untagged lane): enqueues or returns the item back. The capacity
    /// check is global — fair dequeueing, not per-lane reservation,
    /// is what bounds cross-tenant interference; per-tenant *quotas*
    /// are enforced by the service before the push.
    pub fn try_push(&self, lane: Option<&str>, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.len >= self.capacity {
            return Err(PushError::Full(item));
        }
        let idx = match inner.index.get(&lane.map(str::to_string)) {
            Some(&idx) => idx,
            None => {
                let key = lane.map(str::to_string);
                let weight =
                    lane.map_or(1, |name| self.weights.get(name).copied().unwrap_or(1).max(1));
                let idx = inner.lanes.len();
                // Born fully charged: the cursor may already be
                // pointing here (it wraps to new lanes), and an
                // uncharged lane would forfeit its first round.
                inner.lanes.push(Lane { weight, credit: weight, items: VecDeque::new() });
                inner.index.insert(key, idx);
                idx
            }
        };
        inner.lanes[idx].items.push_back(item);
        inner.len += 1;
        drop(inner);
        self.notify.notify_one();
        Ok(())
    }

    /// Blocks until an item is available (`Some`) or the queue is
    /// closed and fully drained (`None`). Weighted round-robin across
    /// nonempty lanes; see the module docs.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if inner.len > 0 {
                return Some(pop_locked(&mut inner));
            }
            if inner.closed {
                return None;
            }
            inner = self.notify.wait(inner).expect("queue lock");
        }
    }

    /// Stops admissions. Already-queued items remain poppable; blocked
    /// consumers wake, drain, then observe `None`.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.notify.notify_all();
    }

    /// True once [`close`](Self::close) was called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("queue lock").closed
    }
}

/// One weighted-round-robin pop. Caller guarantees `inner.len > 0`.
///
/// The cursor stays on a lane while it has both items and credit;
/// otherwise it advances (wrapping) and recharges the entered lane's
/// credit to its weight. Empty lanes are skipped without spending the
/// round — at most one full cycle runs before an item is found, so the
/// walk is O(lanes) worst case and O(1) amortized.
fn pop_locked<T>(inner: &mut Inner<T>) -> T {
    debug_assert!(inner.len > 0);
    loop {
        let n = inner.lanes.len();
        let lane = &mut inner.lanes[inner.cursor % n];
        if lane.credit > 0 && !lane.items.is_empty() {
            lane.credit -= 1;
            inner.len -= 1;
            return lane.items.pop_front().expect("lane checked nonempty");
        }
        inner.cursor = (inner.cursor + 1) % n;
        let entered = &mut inner.lanes[inner.cursor];
        entered.credit = entered.weight;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn weights(pairs: &[(&str, u64)]) -> BTreeMap<String, u64> {
        pairs.iter().map(|(k, w)| (k.to_string(), *w)).collect()
    }

    #[test]
    fn single_lane_is_plain_fifo() {
        // The inactive-policy configuration: every push lands in the
        // implicit lane, so pop order is exactly BoundedQueue's.
        let q = FairQueue::new(8, BTreeMap::new());
        for i in 0..5 {
            q.try_push(None, i).unwrap();
        }
        q.close();
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn sheds_on_global_capacity_and_closed() {
        let q = FairQueue::new(2, BTreeMap::new());
        q.try_push(Some("a"), 1).unwrap();
        q.try_push(Some("b"), 2).unwrap();
        assert_eq!(q.try_push(Some("c"), 3), Err(PushError::Full(3)));
        q.close();
        assert_eq!(q.try_push(None, 4), Err(PushError::Closed(4)));
        assert!(q.is_closed());
    }

    #[test]
    fn round_robin_interleaves_equal_weight_lanes() {
        let q = FairQueue::new(16, BTreeMap::new());
        for i in 0..3 {
            q.try_push(Some("a"), format!("a{i}")).unwrap();
        }
        for i in 0..3 {
            q.try_push(Some("b"), format!("b{i}")).unwrap();
        }
        q.close();
        let drained: Vec<String> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec!["a0", "b0", "a1", "b1", "a2", "b2"]);
    }

    #[test]
    fn weights_skew_service_toward_heavy_lanes() {
        let q = FairQueue::new(32, weights(&[("heavy", 3)]));
        for i in 0..6 {
            q.try_push(Some("heavy"), format!("h{i}")).unwrap();
        }
        for i in 0..2 {
            q.try_push(Some("light"), format!("l{i}")).unwrap();
        }
        q.close();
        let drained: Vec<String> = std::iter::from_fn(|| q.pop()).collect();
        // Three heavy pops per visit, one light pop per visit; light is
        // still served every round — weighted, not starved.
        assert_eq!(drained, vec!["h0", "h1", "h2", "l0", "h3", "h4", "h5", "l1"]);
    }

    #[test]
    fn empty_lanes_donate_their_round() {
        let q = FairQueue::new(16, weights(&[("a", 4)]));
        q.try_push(Some("a"), "a0").unwrap();
        q.try_push(Some("b"), "b0").unwrap();
        // Lane a drains; lane b must be served immediately after with
        // no idle visits to the empty lane.
        assert_eq!(q.pop(), Some("a0"));
        assert_eq!(q.pop(), Some("b0"));
        q.try_push(Some("b"), "b1").unwrap();
        assert_eq!(q.pop(), Some("b1"));
    }

    #[test]
    fn identical_streams_reproduce_identical_pop_orders() {
        let run = || {
            let q = FairQueue::new(64, weights(&[("x", 2), ("y", 5)]));
            for i in 0..30u32 {
                let lane = match i % 3 {
                    0 => Some("x"),
                    1 => Some("y"),
                    _ => None,
                };
                q.try_push(lane, i).unwrap();
            }
            q.close();
            std::iter::from_fn(|| q.pop()).collect::<Vec<u32>>()
        };
        assert_eq!(run(), run(), "pop order is a pure function of the push sequence");
    }

    #[test]
    fn wakes_blocked_consumer_on_push_and_close() {
        let q = Arc::new(FairQueue::new(4, BTreeMap::new()));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(Some("t"), 7usize).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(7));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn many_producers_many_consumers_deliver_everything_once() {
        let q = Arc::new(FairQueue::new(1024, weights(&[("p1", 2)])));
        let mut producers = Vec::new();
        for p in 0..4u64 {
            let q = Arc::clone(&q);
            producers.push(std::thread::spawn(move || {
                let lane = format!("p{p}");
                for i in 0..100u64 {
                    loop {
                        if q.try_push(Some(&lane), p * 1000 + i).is_ok() {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let q = Arc::clone(&q);
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.sort_unstable();
        let expect: Vec<u64> =
            (0..4u64).flat_map(|p| (0..100u64).map(move |i| p * 1000 + i)).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn policy_activity_and_lookups() {
        let inactive = TenantPolicy::default();
        assert!(!inactive.is_active());
        assert_eq!(inactive.quota_for("anyone"), None);
        assert_eq!(inactive.weight_for("anyone"), 1);

        let mut policy = TenantPolicy::default();
        policy.quotas.insert("batch".into(), 8);
        policy.weights.insert("interactive".into(), 4);
        policy.default_quota = Some(16);
        assert!(policy.is_active());
        assert_eq!(policy.quota_for("batch"), Some(8));
        assert_eq!(policy.quota_for("unlisted"), Some(16), "default quota covers the rest");
        assert_eq!(policy.weight_for("interactive"), 4);
        assert_eq!(policy.weight_for("batch"), 1);

        let weight_only = TenantPolicy { weights: weights(&[("a", 2)]), ..TenantPolicy::default() };
        assert!(weight_only.is_active(), "weights alone activate fair dequeueing");
        assert_eq!(weight_only.quota_for("a"), None);
    }

    #[test]
    fn zero_weight_is_clamped_to_one() {
        // A misconfigured zero weight must not wedge the lane (zero
        // credit forever = starvation by operator typo).
        let q = FairQueue::new(8, weights(&[("z", 0)]));
        q.try_push(Some("z"), 1).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(TenantPolicy::default().weight_for("z"), 1);
    }
}
