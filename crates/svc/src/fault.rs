//! Deterministic service-layer fault injection.
//!
//! [`SvcFaultPlan`] describes *when* the service's durability and
//! replication layers misbehave — crash the journal after record N
//! (optionally leaving a torn final record), report fsync failures
//! after the Nth sync, drop or stall a replication stream after N
//! records — so every failover scenario in the test suite is a
//! reproducible schedule, not a flake. The plan is pure data: the
//! journal and the replication loop consult it at their own kill
//! points, exactly as `dtl::fault` injects member-level faults into
//! the threaded executor.
//!
//! Plans round-trip through a compact spec string for the CLI
//! (`ensemble serve --svc-fault SPEC`):
//!
//! ```text
//! seed=42;crash_after=10;torn;fsync_fail=3;drop_stream=5;stall_stream=8
//! ```
//!
//! All clauses are optional; `seed` defaults to 0. The seed feeds the
//! same splitmix64 mix used by `dtl::fault`, currently only to derive
//! the torn-fragment bytes, so two plans with the same spec produce
//! byte-identical crash images.

/// A deterministic schedule of service-layer faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SvcFaultPlan {
    /// Seed for any derived randomness (torn-fragment contents).
    pub seed: u64,
    /// After the Nth successful journal append, the journal "crashes":
    /// it degrades to a dead state and rejects every later append,
    /// simulating the primary process dying at a deterministic offset.
    pub crash_after_append: Option<u64>,
    /// When crashing, also write a torn final record (a fragment with
    /// no trailing newline), simulating a crash mid-append.
    pub torn_tail: bool,
    /// Journal fsyncs after the Nth one report failure (the write
    /// itself still lands in the page cache), exercising the
    /// degrade-to-read-only path without needing a failing disk.
    pub fail_fsync_after: Option<u64>,
    /// The first replication stream the server ever opens drops its
    /// connection after sending N record frames (later sessions run
    /// clean: the injected drop models a transient network failure the
    /// standby must reconnect through).
    pub drop_stream_after: Option<u64>,
    /// The first replication stream stalls (stops sending anything,
    /// including heartbeats, but keeps the connection open) after N
    /// record frames — the standby must detect the wedged primary by
    /// frame timeout, not by EOF. Later sessions run clean.
    pub stall_stream_after: Option<u64>,
}

impl SvcFaultPlan {
    /// Parses a `key=value;flag;...` spec string (see module docs).
    pub fn parse(spec: &str) -> Result<SvcFaultPlan, String> {
        let mut plan = SvcFaultPlan::default();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (key, value) = match clause.split_once('=') {
                Some((k, v)) => (k.trim(), Some(v.trim())),
                None => (clause, None),
            };
            let parsed = |v: Option<&str>| -> Result<u64, String> {
                v.ok_or_else(|| format!("svc-fault: '{key}' needs =N"))?
                    .parse()
                    .map_err(|e| format!("svc-fault: {key}: {e}"))
            };
            match key {
                "seed" => plan.seed = parsed(value)?,
                "crash_after" => plan.crash_after_append = Some(parsed(value)?),
                "torn" => plan.torn_tail = true,
                "fsync_fail" => plan.fail_fsync_after = Some(parsed(value)?),
                "drop_stream" => plan.drop_stream_after = Some(parsed(value)?),
                "stall_stream" => plan.stall_stream_after = Some(parsed(value)?),
                other => return Err(format!("svc-fault: unknown clause '{other}'")),
            }
        }
        Ok(plan)
    }

    /// Renders the plan back to its canonical spec string.
    pub fn to_spec(&self) -> String {
        let mut out = vec![format!("seed={}", self.seed)];
        if let Some(n) = self.crash_after_append {
            out.push(format!("crash_after={n}"));
        }
        if self.torn_tail {
            out.push("torn".to_string());
        }
        if let Some(n) = self.fail_fsync_after {
            out.push(format!("fsync_fail={n}"));
        }
        if let Some(n) = self.drop_stream_after {
            out.push(format!("drop_stream={n}"));
        }
        if let Some(n) = self.stall_stream_after {
            out.push(format!("stall_stream={n}"));
        }
        out.join(";")
    }

    /// The torn-fragment bytes written when [`Self::torn_tail`] fires:
    /// a plausible-looking record prefix with no closing brace and no
    /// newline, derived from the seed so crash images are reproducible.
    pub fn torn_fragment(&self) -> String {
        format!("{{\"rec\":\"score\",\"key\":\"torn-{:016x}", mix(&[self.seed, 0x7041]))
    }

    /// True once the `index`-th (1-based) fsync should report failure.
    pub fn fsync_fails(&self, index: u64) -> bool {
        self.fail_fsync_after.is_some_and(|n| index > n)
    }
}

/// splitmix64: the same tiny deterministic mixer `dtl::fault` uses.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn mix(parts: &[u64]) -> u64 {
    let mut h = 0x51_7c_c1_b7_27_22_0a_95u64;
    for &p in parts {
        h = splitmix64(h ^ p);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips() {
        let spec = "seed=42;crash_after=10;torn;fsync_fail=3;drop_stream=5;stall_stream=8";
        let plan = SvcFaultPlan::parse(spec).unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.crash_after_append, Some(10));
        assert!(plan.torn_tail);
        assert_eq!(plan.fail_fsync_after, Some(3));
        assert_eq!(plan.drop_stream_after, Some(5));
        assert_eq!(plan.stall_stream_after, Some(8));
        assert_eq!(plan.to_spec(), spec);
        assert_eq!(SvcFaultPlan::parse(&plan.to_spec()).unwrap(), plan);
    }

    #[test]
    fn empty_and_partial_specs_parse() {
        assert_eq!(SvcFaultPlan::parse("").unwrap(), SvcFaultPlan::default());
        let plan = SvcFaultPlan::parse("crash_after=2").unwrap();
        assert_eq!(plan.crash_after_append, Some(2));
        assert_eq!(plan.seed, 0);
        assert!(!plan.torn_tail);
    }

    #[test]
    fn unknown_or_malformed_clauses_are_errors() {
        assert!(SvcFaultPlan::parse("bogus=1").is_err());
        assert!(SvcFaultPlan::parse("crash_after").is_err());
        assert!(SvcFaultPlan::parse("crash_after=x").is_err());
    }

    #[test]
    fn torn_fragment_is_seed_deterministic_and_unterminated() {
        let a = SvcFaultPlan { seed: 7, ..SvcFaultPlan::default() };
        let b = SvcFaultPlan { seed: 7, ..SvcFaultPlan::default() };
        let c = SvcFaultPlan { seed: 8, ..SvcFaultPlan::default() };
        assert_eq!(a.torn_fragment(), b.torn_fragment());
        assert_ne!(a.torn_fragment(), c.torn_fragment());
        assert!(!a.torn_fragment().ends_with('}'));
        assert!(!a.torn_fragment().contains('\n'));
    }

    #[test]
    fn fsync_failure_window_is_after_n() {
        let plan = SvcFaultPlan { fail_fsync_after: Some(2), ..SvcFaultPlan::default() };
        assert!(!plan.fsync_fails(1));
        assert!(!plan.fsync_fails(2));
        assert!(plan.fsync_fails(3));
        assert!(!SvcFaultPlan::default().fsync_fails(100));
    }
}
