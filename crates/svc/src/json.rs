//! Minimal JSON value, parser, and writer for the wire protocol.
//!
//! The service speaks JSON-lines over TCP and must keep working in the
//! offline build harness, where `serde_json` is replaced by a
//! non-functional stub — so the protocol carries its own dependency-free
//! codec. It covers exactly what the protocol needs: objects, arrays,
//! strings, IEEE-754 numbers, booleans, null, a recursion-depth guard,
//! and deterministic output (object keys keep insertion order; floats
//! print with Rust's shortest-roundtrip formatting).

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always an `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion-ordered, duplicate keys keep the last value
    /// on lookup.
    Obj(Vec<(String, Value)>),
}

/// Parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the failure.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Nesting depth beyond which parsing aborts (stack-overflow guard for
/// untrusted input).
const MAX_DEPTH: usize = 64;

impl Value {
    /// Object field lookup (last write wins on duplicate keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer (rejects fractions and
    /// anything past 2⁵³ where `f64` loses exactness).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// `as_u64` narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    pub fn parse(input: &str) -> Result<Value, ParseError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }

    /// Serializes to compact JSON. Non-finite numbers become `null`
    /// (JSON has no NaN/∞); object key order is preserved.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.is_finite() {
                    out.push_str(&n.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}
impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Num(n as f64)
    }
}
impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Num(n as f64)
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

/// Builds an object value from `(key, value)` pairs.
pub fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { message: message.to_string(), at: self.pos }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':', "expected ':'")?;
                    self.skip_ws();
                    let val = self.value(depth + 1)?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| ParseError { message: format!("invalid number '{text}'"), at: start })
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uDC00–\uDFFF next.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(hi).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Advance one full UTF-8 scalar. Decode only this
                    // scalar's bytes (width from the lead byte) —
                    // validating the whole remaining input per character
                    // made string parsing O(n²), which turned multi-MB
                    // response lines into minutes of CPU.
                    let width = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid utf-8")),
                    };
                    let end = (self.pos + width).min(self.bytes.len());
                    let c = std::str::from_utf8(&self.bytes[self.pos..end])
                        .ok()
                        .and_then(|s| s.chars().next())
                        .ok_or_else(|| self.err("invalid utf-8"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape digits"))?;
        self.pos += 4;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_simple_values() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-1.5",
            "1e3",
            "\"hi\"",
            "[1,2,3]",
            "{\"a\":1,\"b\":[true,null]}",
        ] {
            let v = Value::parse(text).unwrap();
            let again = Value::parse(&v.to_json()).unwrap();
            assert_eq!(v, again, "{text}");
        }
    }

    #[test]
    fn parses_nested_request_shape() {
        let v = Value::parse(
            r#"{"type":"score","id":7,"members":[{"sim_cores":16,"analyses":[8,8]}],"max_nodes":3}"#,
        )
        .unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("score"));
        assert_eq!(v.get("id").unwrap().as_u64(), Some(7));
        let members = v.get("members").unwrap().as_arr().unwrap();
        assert_eq!(members[0].get("sim_cores").unwrap().as_u64(), Some(16));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = Value::Str("line\nquote\"tab\tback\\slash \u{1F600}".into());
        let parsed = Value::parse(&original.to_json()).unwrap();
        assert_eq!(parsed, original);
        // Escaped input forms too.
        let v = Value::parse(r#""aA\né""#).unwrap();
        assert_eq!(v.as_str(), Some("aA\né"));
        let v = Value::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in
            ["", "{", "[1,", "{\"a\"}", "nul", "1.2.3", "\"open", "{\"a\":1}x", "[}", "\u{7}"]
        {
            assert!(Value::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_deep_nesting_without_overflowing() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(Value::parse(&deep).is_err());
    }

    #[test]
    fn u64_accessor_rejects_fractions_and_negatives() {
        assert_eq!(Value::Num(3.0).as_u64(), Some(3));
        assert_eq!(Value::Num(3.5).as_u64(), None);
        assert_eq!(Value::Num(-1.0).as_u64(), None);
        assert_eq!(Value::Str("3".into()).as_u64(), None);
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = Value::parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn parsing_large_string_heavy_documents_is_not_quadratic() {
        // Regression: the string parser used to re-validate the entire
        // remaining input for every character it consumed, so a multi-MB
        // line (a streamed score result, say) took minutes. This 2 MB
        // document parses in well under a second when parsing is linear
        // and would hang the suite if the quadratic path came back.
        let mut doc = String::from("[");
        for i in 0..40_000 {
            if i > 0 {
                doc.push(',');
            }
            doc.push_str("{\"key_with_some_length\":\"a value string with é and text\"}");
        }
        doc.push(']');
        assert!(doc.len() > 2_000_000);
        let v = Value::parse(&doc).expect("parse");
        let items = v.as_arr().expect("array");
        assert_eq!(items.len(), 40_000);
        assert_eq!(
            items[39_999].get("key_with_some_length").and_then(Value::as_str),
            Some("a value string with é and text")
        );
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Value::Num(f64::NAN).to_json(), "null");
        assert_eq!(Value::Num(f64::INFINITY).to_json(), "null");
    }
}
