//! # svc — the ensemble provisioning service
//!
//! A long-running, concurrent front end over the library's two
//! evaluation paths, the shape the paper's §7 future work asks for
//! ("leveraging the proposed indicators for scheduling in situ
//! components … under resource constraints") and the shape ensemble
//! managers like RADICAL Ensemble Toolkit take in practice: a manager
//! that accepts provisioning queries, queues them under admission
//! control, and executes them on a bounded worker pool.
//!
//! * **score** — ensemble shape + node budget → every canonical feasible
//!   placement evaluated with the closed-form predictor
//!   ([`scheduler::DeltaEvaluator`], no DES: incremental per-node
//!   scoring, bit-identical to the from-scratch path), ranked by
//!   `F(Pᵁ·ᴬ·ᴾ)`. Results are memoized: scoring is deterministic, so
//!   identical queries are answered from the [`cache`] without touching
//!   the predictor.
//! * **run** — a fully placed spec → one simulated
//!   [`runtime::EnsembleRunner`]-style execution, summarized per member.
//!
//! Requests travel either through the in-process API
//! ([`Service::submit`]) or as JSON-lines over TCP ([`server::serve`] /
//! [`SvcClient`]); both share one worker pool, queue, cache, and
//! [metrics](stats::MetricsSnapshot). Backpressure is load-shedding, not
//! blocking: a full queue answers `overloaded` with a retry hint
//! immediately. Shutdown drains everything admitted.
//!
//! With a [`journal`] configured, answered scores and completed runs
//! also persist as an append-only JSON-lines file: a restarted service
//! replays it to warm the score cache and to rebuild the completed-run
//! index behind the `attach { job }` request, so clients re-fetch
//! results produced by a previous process.
//!
//! The journal is also the replication substrate: a [`standby`]
//! follows it live (over a shared filesystem or a `replicate` TCP
//! stream), keeps a warm image, and — when the primary's heartbeats
//! stop — promotes itself by bumping the journal's fencing epoch, so a
//! deposed primary's late appends are rejected instead of forking
//! history. Deterministic fault schedules ([`fault::SvcFaultPlan`])
//! drive the failover tests.
//!
//! The wire codec is the crate's own minimal [`json`] module, so the
//! protocol stays functional in build environments where `serde_json`
//! is stubbed out.

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod fair;
pub mod fault;
pub mod journal;
pub mod json;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod service;
pub mod standby;
pub mod stats;

pub use cache::ScoreCache;
pub use client::{FailoverClient, FailoverPolicy, RetryPolicy as ClientRetryPolicy, SvcClient};
pub use fair::{FairQueue, TenantPolicy};
pub use fault::SvcFaultPlan;
pub use journal::{
    read_epoch, FollowEvent, FsyncPolicy, Journal, JournalConfig, JournalFollower, JournalRecord,
    JournalReplay, JournalStats, ReplayedReservation, FSYNC_FAILURE_LIMIT,
};
pub use protocol::{
    ErrorKind, Frame, MemberSummary, Progress, ProgressBody, ProgressSpec, RankedPlacement,
    Request, RequestBody, Response, RunRequest, ScoreRequest, SubmitRequest, Workloads,
};
pub use queue::{BoundedQueue, PushError};
pub use server::{heartbeat_path, serve, ServerHandle, REPL_HEARTBEAT};
pub use service::{
    small_score_request, CancelToken, CoschedSvcConfig, Pending, Rejected, Service, SvcConfig,
};
pub use standby::{Standby, StandbyConfig, StandbySource, StandbyStatus, DEAD_AFTER_BEATS};
pub use stats::{LatencyHistogram, MetricsSnapshot, SvcStats, TenantRow};
