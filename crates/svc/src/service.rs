//! The service core: a bounded worker pool fed by an admission-controlled
//! queue, with score caching, per-request deadlines, cooperative
//! cancellation, and graceful drain.
//!
//! Life of a request: [`Service::submit`] stamps it, tries the bounded
//! queue — full means an immediate [`Rejected`] with a retry hint (the
//! caller never blocks) — and hands back a [`Pending`] reply handle. A
//! worker pops the job, re-checks deadline and cancellation, executes
//! (score requests first consult the memo cache), and sends exactly one
//! [`Response`] to the handle. [`Service::shutdown`] closes admissions,
//! lets workers drain everything already accepted, and joins them.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, Weak};
use std::time::{Duration, Instant};

use ensemble_core::WarmupPolicy;
use runtime::{SimRunConfig, WorkloadMap};
use scheduler::{
    scan_placements_delta_observed, Admission, CoScheduler, CoschedConfig, DeltaEvaluator,
    NodeBudget, PlacementDecision, Reservation, ScanOptions, ScanProgress,
};

use crate::cache::ScoreCache;
use crate::fair::{FairQueue, TenantPolicy};
use crate::journal::{Journal, JournalConfig, ReplayedReservation};
use crate::protocol::{
    validate_tenant, ErrorKind, Frame, MemberSummary, Progress, ProgressBody, ProgressSpec,
    RankedPlacement, Request, RequestBody, Response, RunRequest, ScoreRequest, SubmitRequest,
    Workloads,
};
use crate::queue::PushError;
use crate::stats::{
    LatencyHistogram, MetricsSnapshot, SvcStats, TenantRow, COLD_START_SERVICE_TIME,
};

/// Tuning of the service.
#[derive(Debug, Clone)]
pub struct SvcConfig {
    /// Worker threads. Zero means "size to host cores minus one".
    pub workers: usize,
    /// Bounded submission-queue capacity.
    pub queue_capacity: usize,
    /// Score-cache capacity (entries).
    pub cache_capacity: usize,
    /// Deadline applied to requests that carry none.
    pub default_deadline: Option<Duration>,
    /// Optional on-disk journal. When set, admitted requests and
    /// completed results persist across restarts: the score cache is
    /// warmed and the attachable-run index rebuilt by replay at start.
    pub journal: Option<JournalConfig>,
    /// Fault-injection hook: the front end panics while handling the
    /// request with this id. Exercises the server's panic containment
    /// in tests; leave `None` in production.
    pub panic_on_request_id: Option<u64>,
    /// Scan worker threads per score request. Zero lets the scan engine
    /// pick (env override, then host parallelism); a request carrying
    /// its own nonzero `workers` outranks this default.
    pub scan_workers: usize,
    /// Optional online co-scheduler. When set, `submit` requests are
    /// placed against live residual capacity before they reach the
    /// worker pool; when `None`, they are answered with an `invalid`
    /// error.
    pub cosched: Option<CoschedSvcConfig>,
    /// Per-tenant admission quotas and fair-dequeue weights. Inactive
    /// (the default) leaves admission and pop order byte-identical to
    /// an untenanted service; the tenant-table cap applies regardless.
    pub tenant_policy: TenantPolicy,
}

impl Default for SvcConfig {
    fn default() -> Self {
        SvcConfig {
            workers: 0,
            queue_capacity: 64,
            cache_capacity: 256,
            default_deadline: None,
            journal: None,
            panic_on_request_id: None,
            scan_workers: 0,
            cosched: None,
            tenant_policy: TenantPolicy::default(),
        }
    }
}

/// Tuning of the optional online co-scheduler (`submit` requests).
#[derive(Debug, Clone)]
pub struct CoschedSvcConfig {
    /// The platform capacity concurrent ensembles share.
    pub budget: NodeBudget,
    /// Bounded co-scheduler wait-queue capacity; offers beyond it shed.
    pub queue_capacity: usize,
    /// Allow EASY backfill past the queue head.
    pub backfill: bool,
    /// Workload map the placement scoring models members with.
    pub workloads: Workloads,
}

impl CoschedSvcConfig {
    /// A co-scheduler over `budget`: 64-deep wait queue, backfill on,
    /// small workloads.
    pub fn new(budget: NodeBudget) -> Self {
        CoschedSvcConfig { budget, queue_capacity: 64, backfill: true, workloads: Workloads::Small }
    }
}

fn host_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get().saturating_sub(1)).unwrap_or(1).max(1)
}

/// Cooperative cancellation flag shared between a reply handle and the
/// worker executing the request.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Requests cancellation; workers observe it at their next check.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// True once cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Admission refusal returned by [`Service::submit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejected {
    /// Queue full: shed with a back-off hint.
    Overloaded {
        /// Suggested client back-off, milliseconds.
        retry_after_ms: u64,
    },
    /// The service stopped admitting work.
    ShuttingDown,
}

impl Rejected {
    /// The wire response for this refusal.
    pub fn to_response(&self, id: u64) -> Response {
        match self {
            Rejected::Overloaded { retry_after_ms } => {
                Response::Overloaded { id, retry_after_ms: *retry_after_ms }
            }
            Rejected::ShuttingDown => Response::Error {
                id,
                kind: ErrorKind::ShuttingDown,
                message: "service is shutting down".into(),
            },
        }
    }
}

/// Reply handle for an accepted request. The worker sends zero or more
/// [`Frame::Progress`] frames (only for progress-opted requests)
/// followed by exactly one [`Frame::Final`].
#[derive(Debug)]
pub struct Pending {
    rx: mpsc::Receiver<Frame>,
    cancel: CancelToken,
    /// Back-reference for the timeout path: a caller polling a waiting
    /// co-scheduled submit may be the server's only traffic, so its own
    /// expiry must be able to trigger the waiting-queue reap (otherwise
    /// a dead waiter holds its queue slot until unrelated traffic
    /// arrives). Weak so an abandoned handle never keeps the pool
    /// alive.
    reaper: Option<Weak<Shared>>,
}

impl Pending {
    /// Blocks until the final response arrives, discarding any interim
    /// progress frames — the drop-in behavior for callers that never
    /// opted in.
    pub fn wait(self) -> Response {
        loop {
            match self.rx.recv().expect("worker always responds before exiting") {
                Frame::Final(response) => return response,
                Frame::Progress(_) => {}
            }
        }
    }

    /// Blocks until the final response arrives, handing every interim
    /// progress frame to `on_progress` as it lands.
    pub fn wait_with(self, mut on_progress: impl FnMut(&Progress)) -> Response {
        loop {
            match self.rx.recv().expect("worker always responds before exiting") {
                Frame::Final(response) => return response,
                Frame::Progress(p) => on_progress(&p),
            }
        }
    }

    /// Blocks until the next frame (progress or final) arrives. The
    /// streaming front end drains a reply frame-by-frame with this.
    pub fn recv_frame(&self) -> Frame {
        self.rx.recv().expect("worker always responds before exiting")
    }

    /// Blocks up to `timeout` for the *final* response, discarding
    /// progress frames; `Err(self)` hands the handle back.
    ///
    /// On expiry this also reaps the co-scheduler's waiting queue: with
    /// no other traffic, a deadline-expired queued `submit` used to
    /// hold its queue slot forever because reaping only ran inside
    /// other requests' admissions. The reap may answer this very
    /// handle, in which case the real final response is returned
    /// instead of the timeout.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Response, Pending> {
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.rx.recv_timeout(remaining) {
                Ok(Frame::Final(r)) => return Ok(r),
                Ok(Frame::Progress(_)) => {}
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if let Some(shared) = self.reaper.as_ref().and_then(Weak::upgrade) {
                        if let Some(cosched) = &shared.cosched {
                            let mut state = cosched.lock().expect("cosched lock");
                            reap_expired_waiting(&shared, &mut state);
                        }
                        // The reap may have just evicted this waiter —
                        // deliver its real (deadline/cancelled) answer
                        // rather than reporting a bare timeout.
                        loop {
                            match self.rx.try_recv() {
                                Ok(Frame::Final(r)) => return Ok(r),
                                Ok(Frame::Progress(_)) => {}
                                Err(_) => break,
                            }
                        }
                    }
                    return Err(self);
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    panic!("worker always responds before exiting")
                }
            }
        }
    }

    /// Requests cooperative cancellation of the pending work. The
    /// response still arrives (as a `cancelled` error if the worker saw
    /// the flag in time, or the real result if it had already finished).
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// The cancellation token (for wiring into connection teardown).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }
}

struct Job {
    request: Request,
    submitted: Instant,
    deadline_at: Option<Instant>,
    cancel: CancelToken,
    reply: mpsc::Sender<Frame>,
    /// Present on `submit` jobs that hold a co-scheduler reservation:
    /// the placement decision the worker runs the ensemble at. The
    /// reservation is released when the worker finishes the job — on
    /// success, failure, cancellation, or deadline drain alike.
    cosched: Option<CoschedJob>,
}

/// The co-scheduling context a placed `submit` job carries to a worker.
struct CoschedJob {
    decision: PlacementDecision,
    backfilled: bool,
    queue_wait_ms: f64,
    /// Per-node free cores right after this job's reservation opened.
    residual: Vec<u64>,
}

/// A `submit` job waiting for capacity in the co-scheduler queue.
struct WaitingSubmit {
    job: Job,
    /// Monotone admission order among waiting jobs — a job started
    /// while a lower-seq job still waits was backfilled.
    seq: u64,
    enqueued: Instant,
}

/// Everything the co-scheduler mutates under one lock: the scheduler
/// itself plus the reply handles of jobs waiting in its queue.
struct CoschedState {
    sched: CoScheduler,
    waiting: HashMap<u64, WaitingSubmit>,
    next_wait_seq: u64,
    /// Tenants of reservations restored from the journal at start.
    /// Their jobs have no worker, so the normal completion path never
    /// settles their accounting; `finish_cosched` consults this map to
    /// close them out (in_flight → cancelled) when the operator
    /// releases them.
    restored_tenants: HashMap<u64, String>,
}

/// Live per-tenant accounting: the monotone counters and gauges the
/// snapshot's [`TenantRow`] is built from, plus the queue-wait
/// histogram. The terminal buckets are mutually exclusive, so
/// `admitted = executed + expired + cancelled + in_queue + in_flight`
/// holds at every quiescent point.
#[derive(Default)]
struct TenantState {
    admitted: u64,
    executed: u64,
    shed: u64,
    expired: u64,
    cancelled: u64,
    /// Requests admitted but not yet picked up by a worker (worker
    /// queue or co-scheduler wait queue alike).
    in_queue: u64,
    /// Requests currently on a worker — or, for journal-restored
    /// orphan reservations, holding capacity with no worker.
    in_flight: u64,
    /// Submit→worker-pickup wait distribution.
    queue_wait: LatencyHistogram,
}

/// The bounded tenant table. Rows are created on first sight up to
/// `max_tracked`; past the cap, unseen tags fold into the shared
/// [`TenantPolicy::OVERFLOW_TENANT`] row (so a client cycling random
/// tags bounds both service memory and the metrics response). Folding
/// is deterministic over time because rows are never evicted.
struct TenantTable {
    rows: BTreeMap<String, TenantState>,
    max_tracked: usize,
}

impl TenantTable {
    fn new(max_tracked: usize) -> TenantTable {
        TenantTable { rows: BTreeMap::new(), max_tracked: max_tracked.max(1) }
    }

    /// The row name `tenant` is tracked under: itself while the table
    /// has room (or the tenant is already tracked), the overflow row
    /// otherwise. Policy-named tenants are pre-seeded at start, so they
    /// always resolve to themselves.
    fn resolve_name(&self, tenant: &str) -> String {
        if self.rows.contains_key(tenant) || self.rows.len() < self.max_tracked {
            tenant.to_string()
        } else {
            TenantPolicy::OVERFLOW_TENANT.to_string()
        }
    }

    fn row(&mut self, tenant: &str) -> &mut TenantState {
        let key = self.resolve_name(tenant);
        self.rows.entry(key).or_default()
    }
}

struct Shared {
    queue: FairQueue<Job>,
    stats: SvcStats,
    cache: ScoreCache<Vec<RankedPlacement>>,
    /// Completed run results by job id (the original request id), the
    /// index behind `attach`. Bounded FIFO like the score cache; the
    /// journal rebuilds it across restarts.
    runs: ScoreCache<Response>,
    journal: Option<Journal>,
    workers: usize,
    scan_workers: usize,
    cosched: Option<Mutex<CoschedState>>,
    /// Per-tenant accounting for requests that carry a tenant tag.
    /// Lock order: cosched → tenants → queue, never the reverse (the
    /// worker pop releases the queue lock before touching tenants).
    tenants: Mutex<TenantTable>,
    /// Quotas and weights; inactive means single-lane FIFO dequeue and
    /// no admission quota — byte-identical to the pre-quota service.
    tenant_policy: TenantPolicy,
    /// Cold-start seed of the retry-after hint (the default deadline
    /// budget when configured).
    hint_fallback: Duration,
}

/// The ensemble provisioning service. Cheap to clone handles are not
/// provided; share it behind an [`Arc`] (the TCP front end does).
pub struct Service {
    shared: Arc<Shared>,
    config: SvcConfig,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Service {
    /// Starts the worker pool. Panics if the configured journal cannot
    /// be opened — use [`Service::try_start`] to handle that gracefully.
    pub fn start(config: SvcConfig) -> Service {
        Service::try_start(config).expect("open journal")
    }

    /// Starts the worker pool, opening (and replaying) the journal when
    /// one is configured. Replay warms the score cache — the first
    /// post-restart `score` of a previously-seen query is a hit — and
    /// rebuilds the completed-run index behind `attach`.
    pub fn try_start(mut config: SvcConfig) -> std::io::Result<Service> {
        if config.workers == 0 {
            config.workers = host_workers();
        }
        let cache = ScoreCache::new(config.cache_capacity);
        let runs = ScoreCache::new(config.cache_capacity);
        let mut replayed_reservations = Vec::new();
        let mut admit_tenants: HashMap<u64, String> = HashMap::new();
        let journal = match config.journal.clone() {
            Some(journal_config) => {
                let (journal, replay) = Journal::open(journal_config)?;
                // Chronological order + FIFO eviction: when the replay
                // holds more than the cache fits, the newest survive.
                for (key, placements) in replay.scores {
                    cache.insert(key, placements);
                }
                for (job, response) in replay.runs {
                    runs.insert(job.to_string(), response);
                }
                replayed_reservations = replay.reservations;
                admit_tenants = replay.admit_tenants;
                Some(journal)
            }
            None => None,
        };
        // Pre-seed a row per policy-named tenant: their rows (and
        // quota/weight columns) are visible from the first snapshot,
        // and they can never fold into the overflow row however many
        // anonymous tags arrive first.
        let mut tenant_table = TenantTable::new(config.tenant_policy.max_tracked);
        for name in config.tenant_policy.quotas.keys().chain(config.tenant_policy.weights.keys()) {
            tenant_table.rows.entry(name.clone()).or_default();
        }
        let cosched = config.cosched.clone().map(|cc| {
            let mut sched_config = CoschedConfig::new(cc.budget);
            sched_config.queue_capacity = cc.queue_capacity;
            sched_config.backfill = cc.backfill;
            sched_config.scan =
                ScanOptions { workers: config.scan_workers.max(1), ..ScanOptions::default() };
            let mut sched = CoScheduler::new(sched_config, cosched_base(cc.workloads));
            // Rebuild the residency map from the journaled reservations
            // still open at the last shutdown/crash: capacity committed
            // to jobs the old process never finished stays committed
            // (and visible in metrics) until explicitly released. Their
            // tenants re-occupy quota too — the reserve record's own
            // attribution first, the admit map as the pre-tenant-record
            // fallback.
            let mut restored_tenants = HashMap::new();
            for r in replayed_reservations {
                let tenant = r.tenant.clone().or_else(|| admit_tenants.get(&r.job).cloned());
                let shape = scheduler::EnsembleShape { members: r.members };
                let reservation = Reservation::build(
                    r.job,
                    shape,
                    r.assignment,
                    cc.budget.max_nodes,
                    r.predicted_end,
                    r.seq,
                );
                match sched.restore(reservation) {
                    Ok(()) => {
                        if let Some(tenant) = tenant {
                            let row = tenant_table.row(&tenant);
                            row.admitted += 1;
                            row.in_flight += 1;
                            restored_tenants.insert(r.job, tenant);
                        }
                    }
                    Err(e) => eprintln!(
                        "svc cosched: dropped journaled reservation for job {}: {e}",
                        r.job
                    ),
                }
            }
            Mutex::new(CoschedState {
                sched,
                waiting: HashMap::new(),
                next_wait_seq: 0,
                restored_tenants,
            })
        });
        let shared = Arc::new(Shared {
            queue: FairQueue::new(config.queue_capacity, config.tenant_policy.weights.clone()),
            stats: SvcStats::default(),
            cache,
            runs,
            journal,
            workers: config.workers,
            scan_workers: config.scan_workers,
            cosched,
            tenants: Mutex::new(tenant_table),
            tenant_policy: config.tenant_policy.clone(),
            hint_fallback: config.default_deadline.unwrap_or(COLD_START_SERVICE_TIME),
        });
        let mut handles = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let shared = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("svc-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker"),
            );
        }
        Ok(Service { shared, config, handles: Mutex::new(handles) })
    }

    /// Offers a request for admission. Never blocks: a full queue sheds
    /// the request with [`Rejected::Overloaded`]. `submit` requests go
    /// through the co-scheduler first — the worker queue only ever sees
    /// them holding a placement.
    pub fn submit(&self, mut request: Request) -> Result<Pending, Rejected> {
        let stats = &self.shared.stats;
        stats.submitted.fetch_add(1, Ordering::Relaxed);
        // Wire requests were validated at decode; in-process callers
        // get the same rule here, so an unparseable tag can never reach
        // the tenant table (or mint an unbounded metrics row).
        if let Some(tag) = &request.tenant {
            if let Err(message) = validate_tenant(tag) {
                stats.errored.fetch_add(1, Ordering::Relaxed);
                let (tx, rx) = mpsc::channel();
                let _ = tx.send(Frame::Final(Response::Error {
                    id: request.id,
                    kind: ErrorKind::Invalid,
                    message,
                }));
                return Ok(Pending { rx, cancel: CancelToken::default(), reaper: None });
            }
        }
        if request.deadline.is_none() {
            request.deadline = self.config.default_deadline;
        }
        let submitted = Instant::now();
        let deadline_at = request.deadline.map(|d| submitted + d);
        let cancel = CancelToken::default();
        let (tx, rx) = mpsc::channel();
        if matches!(request.body, RequestBody::Submit(_)) {
            return self.submit_cosched(request, submitted, deadline_at, cancel, tx, rx);
        }
        // Only *admitted* requests are journaled; clone up front because
        // the job owns the request once pushed.
        let admit_copy = self.shared.journal.as_ref().map(|_| request.clone());
        let job = Job {
            request,
            submitted,
            deadline_at,
            cancel: cancel.clone(),
            reply: tx,
            cosched: None,
        };
        match quota_push(&self.shared, job) {
            Ok(()) => {
                if let (Some(journal), Some(request)) = (&self.shared.journal, &admit_copy) {
                    journal.append_admit(request);
                }
                Ok(self.pending(rx, cancel))
            }
            Err(AdmitRefusal::Quota { retry_after_ms }) => {
                Err(Rejected::Overloaded { retry_after_ms })
            }
            Err(AdmitRefusal::Full) => {
                Err(Rejected::Overloaded { retry_after_ms: self.retry_after_hint_ms() })
            }
            Err(AdmitRefusal::Closed) => Err(Rejected::ShuttingDown),
        }
    }

    /// Wraps a reply channel as a [`Pending`] carrying the weak
    /// back-reference `wait_timeout` reaps through.
    fn pending(&self, rx: mpsc::Receiver<Frame>, cancel: CancelToken) -> Pending {
        Pending { rx, cancel, reaper: Some(Arc::downgrade(&self.shared)) }
    }

    /// Admission path of `submit` requests: place against live residual
    /// capacity, queue when nothing fits, shed when the wait queue is
    /// full. Placed jobs enter the worker queue already holding their
    /// reservation; queued jobs park their reply handle until a
    /// completion pumps them through.
    fn submit_cosched(
        &self,
        request: Request,
        submitted: Instant,
        deadline_at: Option<Instant>,
        cancel: CancelToken,
        tx: mpsc::Sender<Frame>,
        rx: mpsc::Receiver<Frame>,
    ) -> Result<Pending, Rejected> {
        let stats = &self.shared.stats;
        let id = request.id;
        let tenant = request.tenant.clone();
        // Errors decided at admission (never queued) still flow through
        // the normal reply channel, so the caller's Pending works
        // unchanged.
        let inline_error: (ErrorKind, String);
        let Some(cosched) = &self.shared.cosched else {
            stats.errored.fetch_add(1, Ordering::Relaxed);
            let _ = tx.send(Frame::Final(Response::Error {
                id,
                kind: ErrorKind::Invalid,
                message: "submit requires the co-scheduler (start the service with --cosched)"
                    .to_string(),
            }));
            return Ok(Pending { rx, cancel, reaper: None });
        };
        let RequestBody::Submit(submit) = &request.body else { unreachable!("routed on body") };
        let shape = submit.shape.clone();
        let mut state = cosched.lock().expect("cosched lock");
        // Expired/cancelled waiters are reaped before every admission
        // decision so dead jobs never hold queue slots ahead of live
        // ones.
        reap_expired_waiting(&self.shared, &mut state);
        // The tenants lock is held through the whole admission decision
        // (lock order: cosched → tenants → queue), so the quota check
        // and the occupancy increment are one atomic step even against
        // racing non-submit traffic of the same tenant.
        let mut table = self.shared.tenants.lock().expect("tenants lock");
        let resolved = tenant.as_deref().map(|t| table.resolve_name(t));
        let lane = if self.shared.tenant_policy.is_active() { resolved.clone() } else { None };
        if self.shared.tenant_policy.is_active() {
            if let Some(name) = &resolved {
                if let Some(quota) = self.shared.tenant_policy.quota_for(name) {
                    let row = table.row(name);
                    let occupancy = row.in_queue + row.in_flight;
                    if occupancy >= quota {
                        // Quota shed happens *before* the scheduler
                        // sees the job: no counters move, no virtual
                        // time advances, and the global queue may still
                        // have room for other tenants.
                        row.shed += 1;
                        stats.rejected.fetch_add(1, Ordering::Relaxed);
                        return Err(Rejected::Overloaded {
                            retry_after_ms: tenant_retry_hint_ms(&self.shared, occupancy),
                        });
                    }
                }
            }
        }
        match state.sched.submit(id, shape) {
            Ok(Admission::Placed(decision)) => {
                // Placed with jobs still waiting means this admission
                // jumped the queue: backfill.
                let backfilled = state.sched.queue_depth() > 0;
                let residual: Vec<u64> =
                    state.sched.residency().residual().iter().map(|&c| u64::from(c)).collect();
                let reservation = replayed_reservation(&state, id, tenant.as_ref());
                let admit_copy = self.shared.journal.as_ref().map(|_| request.clone());
                let cosched_job = CoschedJob { decision, backfilled, queue_wait_ms: 0.0, residual };
                let job = Job {
                    request,
                    submitted,
                    deadline_at,
                    cancel: cancel.clone(),
                    reply: tx,
                    cosched: Some(cosched_job),
                };
                match self.shared.queue.try_push(lane.as_deref(), job) {
                    Ok(()) => {
                        stats.accepted.fetch_add(1, Ordering::Relaxed);
                        if let Some(name) = &resolved {
                            let row = table.row(name);
                            row.admitted += 1;
                            row.in_queue += 1;
                        }
                        drop(table);
                        if let Some(journal) = &self.shared.journal {
                            if let Some(request) = &admit_copy {
                                journal.append_admit(request);
                            }
                            if let Some(reservation) = &reservation {
                                journal.append_reserve(reservation);
                            }
                        }
                        return Ok(self.pending(rx, cancel));
                    }
                    Err(PushError::Full(_)) => {
                        // The reservation never started: roll it back
                        // without touching the virtual clock.
                        state.sched.withdraw(id);
                        stats.rejected.fetch_add(1, Ordering::Relaxed);
                        if let Some(name) = &resolved {
                            table.row(name).shed += 1;
                        }
                        return Err(Rejected::Overloaded {
                            retry_after_ms: retry_hint_ms(&self.shared),
                        });
                    }
                    Err(PushError::Closed(_)) => {
                        state.sched.withdraw(id);
                        return Err(Rejected::ShuttingDown);
                    }
                }
            }
            Ok(Admission::Queued { depth }) => {
                stats.accepted.fetch_add(1, Ordering::Relaxed);
                if let Some(name) = &resolved {
                    let row = table.row(name);
                    row.admitted += 1;
                    row.in_queue += 1;
                }
                drop(table);
                if let Some(journal) = &self.shared.journal {
                    journal.append_admit(&request);
                }
                if request.progress.is_some() {
                    let frame = Frame::Progress(Progress {
                        id,
                        body: ProgressBody::Submit {
                            queue_depth: Some(depth as u64),
                            assignment: None,
                        },
                    });
                    if tx.send(frame).is_ok() {
                        stats.progress_frames_sent.fetch_add(1, Ordering::Relaxed);
                    }
                }
                let seq = state.next_wait_seq;
                state.next_wait_seq += 1;
                let job = Job {
                    request,
                    submitted,
                    deadline_at,
                    cancel: cancel.clone(),
                    reply: tx,
                    cosched: None,
                };
                state.waiting.insert(id, WaitingSubmit { job, seq, enqueued: Instant::now() });
                return Ok(self.pending(rx, cancel));
            }
            Ok(Admission::Shed) => {
                stats.rejected.fetch_add(1, Ordering::Relaxed);
                if let Some(name) = &resolved {
                    table.row(name).shed += 1;
                }
                return Err(Rejected::Overloaded { retry_after_ms: retry_hint_ms(&self.shared) });
            }
            Ok(Admission::Infeasible) => {
                inline_error = (
                    ErrorKind::Invalid,
                    "ensemble cannot fit the co-scheduled platform even when idle".to_string(),
                );
            }
            Err(scheduler::CoschedError::DuplicateJob(job)) => {
                inline_error = (
                    ErrorKind::Invalid,
                    format!("job {job} already holds a reservation or queue slot"),
                );
            }
            Err(e) => {
                inline_error = (ErrorKind::Internal, format!("placement scoring failed: {e}"));
            }
        }
        drop(table);
        drop(state);
        let (kind, message) = inline_error;
        stats.errored.fetch_add(1, Ordering::Relaxed);
        let _ = tx.send(Frame::Final(Response::Error { id, kind, message }));
        Ok(Pending { rx, cancel, reaper: None })
    }

    /// Releases a reservation by job id — the operator path for orphans
    /// restored from the journal after a restart (their original worker
    /// is gone, so no completion will ever release them). Pumps the
    /// wait queue like any completion. Returns false when the job holds
    /// no reservation.
    pub fn release_reservation(&self, job: u64) -> bool {
        let Some(cosched) = &self.shared.cosched else { return false };
        let state = cosched.lock().expect("cosched lock");
        if !state.sched.residency().reservations().any(|r| r.job == job) {
            return false;
        }
        drop(state);
        finish_cosched(&self.shared, job);
        true
    }

    /// Suggested back-off for a shed request: the time one queue's worth
    /// of work takes the pool at the observed mean service time. Before
    /// any request has finished, the mean is seeded with the default
    /// deadline budget (or [`COLD_START_SERVICE_TIME`]) so a cold-start
    /// overload still produces a hint proportional to backlog — the old
    /// zero-mean estimate told every shed client "retry in 1 ms",
    /// inviting a thundering herd. Computed in nanoseconds so sub-ms
    /// means still scale with backlog instead of truncating to zero.
    pub fn retry_after_hint_ms(&self) -> u64 {
        retry_hint_ms(&self.shared)
    }

    /// Serves an `attach { job }` lookup against the completed-run
    /// index: the stored result re-emitted under the attach request's
    /// own correlation id, or a `not_found` error. Served inline by the
    /// front end (like `metrics`) — it never queues, so re-attaching
    /// works even under overload.
    pub fn attach(&self, id: u64, job: u64) -> Response {
        attach_response(&self.shared, id, job)
    }

    /// Point-in-time metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        let s = &self.shared.stats;
        let j = self.shared.journal.as_ref().map(|j| j.stats()).unwrap_or_default();
        let (cosched_enabled, cosched_queue_depth, cosched_open, cosched_committed, cc) =
            match &self.shared.cosched {
                Some(cosched) => {
                    let mut state = cosched.lock().expect("cosched lock");
                    // Scraping metrics doubles as a liveness tick: on a
                    // quiet server nothing else visits the waiting
                    // queue, so dead waiters would hold their quota
                    // slots until the next submit.
                    reap_expired_waiting(&self.shared, &mut state);
                    (
                        true,
                        state.sched.queue_depth(),
                        state.sched.residency().open(),
                        state.sched.residency().committed_cores(),
                        state.sched.counters(),
                    )
                }
                None => (false, 0, 0, 0, scheduler::CoschedCounters::default()),
            };
        let policy = &self.shared.tenant_policy;
        let tenants = self
            .shared
            .tenants
            .lock()
            .expect("tenants lock")
            .rows
            .iter()
            .map(|(name, t)| {
                (
                    name.clone(),
                    TenantRow {
                        admitted: t.admitted,
                        executed: t.executed,
                        shed: t.shed,
                        expired: t.expired,
                        cancelled: t.cancelled,
                        in_queue: t.in_queue,
                        in_flight: t.in_flight,
                        quota: policy.quota_for(name).unwrap_or(0),
                        weight: policy.weight_for(name),
                        queue_wait_p50_ms: t.queue_wait.quantile_ms(0.50),
                        queue_wait_p95_ms: t.queue_wait.quantile_ms(0.95),
                    },
                )
            })
            .collect();
        MetricsSnapshot {
            submitted: s.submitted.load(Ordering::Relaxed),
            accepted: s.accepted.load(Ordering::Relaxed),
            rejected: s.rejected.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            executed: s.executed.load(Ordering::Relaxed),
            cancelled: s.cancelled.load(Ordering::Relaxed),
            deadline_expired: s.deadline_expired.load(Ordering::Relaxed),
            errored: s.errored.load(Ordering::Relaxed),
            queue_depth: self.shared.queue.len(),
            queue_capacity: self.shared.queue.capacity(),
            in_flight: s.in_flight.load(Ordering::Relaxed),
            workers: self.shared.workers,
            latency_p50_ms: s.latency.quantile_ms(0.50),
            latency_p95_ms: s.latency.quantile_ms(0.95),
            latency_p99_ms: s.latency.quantile_ms(0.99),
            cache_hits: self.shared.cache.hits(),
            cache_misses: self.shared.cache.misses(),
            cache_entries: self.shared.cache.len(),
            candidates_scanned: s.candidates_scanned.load(Ordering::Relaxed),
            delta_solve_hits: s.delta_solve_hits.load(Ordering::Relaxed),
            delta_solve_misses: s.delta_solve_misses.load(Ordering::Relaxed),
            delta_members_recomputed: s.delta_members_recomputed.load(Ordering::Relaxed),
            progress_frames_sent: s.progress_frames_sent.load(Ordering::Relaxed),
            run_index_entries: self.shared.runs.len(),
            journal_enabled: self.shared.journal.is_some(),
            journal_appended: j.appended,
            journal_append_errors: j.append_errors,
            journal_bytes: j.bytes,
            journal_rotations: j.rotations,
            journal_replayed_scores: j.replayed_scores,
            journal_replayed_runs: j.replayed_runs,
            journal_replay_dropped: j.replay_dropped,
            journal_fsync_errors: j.fsync_errors,
            journal_quarantined: j.quarantined,
            journal_epoch: j.epoch,
            journal_fenced_appends: j.fenced_appends,
            journal_degraded: j.degraded,
            cosched_enabled,
            cosched_queue_depth,
            cosched_open_reservations: cosched_open,
            cosched_committed_cores: cosched_committed,
            cosched_placed: cc.placed,
            cosched_queued: cc.queued,
            cosched_backfilled: cc.backfilled,
            cosched_shed: cc.shed,
            cosched_infeasible: cc.infeasible,
            cosched_released: cc.released,
            cosched_cancelled: cc.cancelled,
            tenants,
        }
    }

    /// Empties the score cache (benchmark cold path).
    pub fn clear_cache(&self) {
        self.shared.cache.clear();
    }

    /// Point-in-time journal counters, when a journal is configured.
    /// The replication stream reads the fencing epoch and append count
    /// from here for its heartbeat frames.
    pub fn journal_stats(&self) -> Option<crate::journal::JournalStats> {
        self.shared.journal.as_ref().map(|j| j.stats())
    }

    /// The configured fault-injection request id, if any (see
    /// [`SvcConfig::panic_on_request_id`]).
    pub fn panic_on_request_id(&self) -> Option<u64> {
        self.config.panic_on_request_id
    }

    /// Worker pool size.
    pub fn workers(&self) -> usize {
        self.shared.workers
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &SvcConfig {
        &self.config
    }

    /// Graceful shutdown: stop admitting, drain everything accepted,
    /// join the pool. `submit` jobs still waiting in the co-scheduler
    /// queue are answered with `shutting_down` so their callers unblock
    /// (placed jobs drained normally and released their reservations as
    /// the workers finished them). Idempotent.
    pub fn shutdown(&self) {
        self.shared.queue.close();
        let handles = std::mem::take(&mut *self.handles.lock().expect("handles lock"));
        for h in handles {
            let _ = h.join();
        }
        if let Some(cosched) = &self.shared.cosched {
            let mut state = cosched.lock().expect("cosched lock");
            let waiting: Vec<u64> = state.waiting.keys().copied().collect();
            for id in waiting {
                let entry = state.waiting.remove(&id).expect("key just listed");
                state.sched.cancel_queued(id);
                tenant_bump(&self.shared, entry.job.request.tenant.as_ref(), |row| {
                    row.in_queue = row.in_queue.saturating_sub(1);
                    row.cancelled += 1;
                });
                let _ = entry.job.reply.send(Frame::Final(Rejected::ShuttingDown.to_response(id)));
            }
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        let started = Instant::now();
        shared.stats.in_flight.fetch_add(1, Ordering::Relaxed);
        tenant_bump(shared, job.request.tenant.as_ref(), |row| {
            row.in_queue = row.in_queue.saturating_sub(1);
            row.in_flight += 1;
            row.queue_wait.record(job.submitted.elapsed());
        });
        let (response, executed) = execute(shared, &job);
        shared.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
        // Only jobs whose body actually ran contribute to the service-time
        // mean. Jobs drained from the queue already expired or cancelled
        // finish in microseconds; folding them into the denominator
        // deflated the mean and made `retry_after_hint_ms` tell shed
        // clients to hammer an overloaded pool.
        if executed {
            shared.stats.executed.fetch_add(1, Ordering::Relaxed);
            shared
                .stats
                .busy_nanos
                .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        shared.stats.latency.record(job.submitted.elapsed());
        // Every admitted job lands in exactly one terminal tenant
        // bucket: executed, expired, or cancelled. A job that did not
        // execute was drained from the queue by a deadline or a cancel
        // (those are the only non-executing exits from `execute`), so
        // the three arms below are exhaustive and mutually exclusive —
        // that is what keeps the per-tenant conservation invariant
        // `admitted = executed + expired + cancelled + in_queue +
        // in_flight` true at every quiescent point.
        tenant_bump(shared, job.request.tenant.as_ref(), |row| {
            row.in_flight = row.in_flight.saturating_sub(1);
            if executed {
                row.executed += 1;
            } else if matches!(&response, Response::Error { kind: ErrorKind::Deadline, .. }) {
                row.expired += 1;
            } else {
                row.cancelled += 1;
            }
        });
        match &response {
            Response::Error { kind: ErrorKind::Deadline, .. } => {
                shared.stats.deadline_expired.fetch_add(1, Ordering::Relaxed);
            }
            Response::Error { kind: ErrorKind::Cancelled, .. } => {
                shared.stats.cancelled.fetch_add(1, Ordering::Relaxed);
            }
            Response::Error { .. } => {
                shared.stats.errored.fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                shared.stats.completed.fetch_add(1, Ordering::Relaxed);
            }
        }
        // Completed runs become attachable by their job id (the request
        // id), and durable when a journal is attached.
        if let Response::RunResult { .. } = &response {
            let job_id = job.request.id;
            shared.runs.insert(job_id.to_string(), response.clone());
            if let Some(journal) = &shared.journal {
                journal.append_run(job_id, &response);
            }
        }
        // A co-scheduled job releases its reservation no matter how it
        // finished — success, failure, cancellation, or deadline drain.
        // Leaking capacity on the error paths is exactly the bug the
        // release-on-every-exit rule exists to prevent. Released
        // *before* the final frame so a client that has seen its result
        // also sees the capacity freed (and an identical serial request
        // stream observes an identical residency at every admission).
        if job.cosched.is_some() {
            finish_cosched(shared, job.request.id);
        }
        // The receiver may be gone (client disconnected) — that is fine.
        let _ = job.reply.send(Frame::Final(response));
    }
}

/// Suggested back-off for a shed request: one queue's worth of work at
/// the observed mean service time (seeded by the deadline budget or
/// [`COLD_START_SERVICE_TIME`] before the first completion). See
/// [`Service::retry_after_hint_ms`].
fn retry_hint_ms(shared: &Shared) -> u64 {
    let mean = shared.stats.mean_service_time_or(shared.hint_fallback);
    let backlog = (shared.queue.len() + 1) as u64;
    let per_worker = backlog.div_ceil(shared.workers as u64);
    (mean.as_nanos() as u64).saturating_mul(per_worker).div_ceil(1_000_000).max(1)
}

/// Bumps one tenant's accounting row, creating it on first sight (or
/// folding it into the overflow row once the table is full). Untagged
/// requests cost nothing here.
fn tenant_bump(shared: &Shared, tenant: Option<&String>, bump: impl FnOnce(&mut TenantState)) {
    if let Some(tenant) = tenant {
        let mut table = shared.tenants.lock().expect("tenants lock");
        bump(table.row(tenant));
    }
}

/// Why an admission was refused by [`quota_push`]. The job itself is
/// dropped with the refusal — its reply channel answers the caller.
enum AdmitRefusal {
    /// The tenant's own quota is exhausted; the global queue may still
    /// have room. Carries a hint sized to *this tenant's* backlog.
    Quota { retry_after_ms: u64 },
    /// The global queue is full.
    Full,
    /// The service is shutting down.
    Closed,
}

/// Single admission gate for direct (non-cosched) traffic: checks the
/// tenant quota and pushes into the fair queue as one atomic step under
/// the tenants lock, so two racing submits cannot both squeeze through
/// the last quota slot.
fn quota_push(shared: &Shared, job: Job) -> Result<(), AdmitRefusal> {
    let tenant = job.request.tenant.clone();
    let mut table = shared.tenants.lock().expect("tenants lock");
    let resolved = tenant.as_deref().map(|t| table.resolve_name(t));
    // Lanes only exist when a policy is configured: with no policy every
    // push lands in the single implicit lane, which makes the fair queue
    // degenerate to the exact FIFO the untenanted service always had.
    let lane = if shared.tenant_policy.is_active() { resolved.clone() } else { None };
    if shared.tenant_policy.is_active() {
        if let Some(name) = &resolved {
            if let Some(quota) = shared.tenant_policy.quota_for(name) {
                let row = table.row(name);
                let occupancy = row.in_queue + row.in_flight;
                if occupancy >= quota {
                    row.shed += 1;
                    shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(AdmitRefusal::Quota {
                        retry_after_ms: tenant_retry_hint_ms(shared, occupancy),
                    });
                }
            }
        }
    }
    match shared.queue.try_push(lane.as_deref(), job) {
        Ok(()) => {
            shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
            if let Some(name) = &resolved {
                let row = table.row(name);
                row.admitted += 1;
                row.in_queue += 1;
            }
            Ok(())
        }
        Err(PushError::Full(_)) => {
            shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            if let Some(name) = &resolved {
                table.row(name).shed += 1;
            }
            Err(AdmitRefusal::Full)
        }
        Err(PushError::Closed(_)) => Err(AdmitRefusal::Closed),
    }
}

/// Back-off hint for a quota-shed request: the tenant's own occupancy
/// (not the global backlog) priced at the observed mean service time —
/// roughly when one of the tenant's held slots should free up.
fn tenant_retry_hint_ms(shared: &Shared, occupancy: u64) -> u64 {
    let mean = shared.stats.mean_service_time_or(shared.hint_fallback);
    let per_worker = (occupancy + 1).div_ceil(shared.workers as u64);
    (mean.as_nanos() as u64).saturating_mul(per_worker).div_ceil(1_000_000).max(1)
}

/// The base platform/workload model the co-scheduler scores candidate
/// placements with (the member shapes come from each submit request).
fn cosched_base(workloads: Workloads) -> SimRunConfig {
    let placeholder = scheduler::EnsembleShape::uniform(1, 16, 1, 8);
    let mut cfg = base_config(placeholder.materialize(&[0; 2]), workloads);
    cfg.n_steps = 6;
    cfg
}

/// The durable image of `job`'s open reservation, for the journal. The
/// tenant rides along so a restart can rebuild quota occupancy even
/// after compaction has dropped the admit record.
fn replayed_reservation(
    state: &CoschedState,
    job: u64,
    tenant: Option<&String>,
) -> Option<ReplayedReservation> {
    state.sched.residency().reservations().find(|r| r.job == job).map(|r| ReplayedReservation {
        job: r.job,
        members: r.shape.members.clone(),
        assignment: r.assignment.clone(),
        predicted_end: r.predicted_end,
        seq: r.seq,
        tenant: tenant.cloned(),
    })
}

/// Answers and evicts waiting `submit` jobs whose deadline expired or
/// whose caller cancelled. Queued jobs hold no reservation, so eviction
/// frees only their queue slot — residual capacity cannot leak here by
/// construction; the regression test drains an expired backlog and
/// asserts exactly that.
fn reap_expired_waiting(shared: &Shared, state: &mut CoschedState) {
    let now = Instant::now();
    let dead: Vec<u64> = state
        .waiting
        .iter()
        .filter(|(_, w)| {
            w.job.cancel.is_cancelled() || w.job.deadline_at.is_some_and(|at| now >= at)
        })
        .map(|(&id, _)| id)
        .collect();
    for id in dead {
        let entry = state.waiting.remove(&id).expect("key just listed");
        state.sched.cancel_queued(id);
        let cancelled = entry.job.cancel.is_cancelled();
        // Reaped waiters leave the queue and land in a terminal bucket
        // in the same breath — they must not vanish from the per-tenant
        // conservation sum.
        tenant_bump(shared, entry.job.request.tenant.as_ref(), |row| {
            row.in_queue = row.in_queue.saturating_sub(1);
            if cancelled {
                row.cancelled += 1;
            } else {
                row.expired += 1;
            }
        });
        let response = if cancelled {
            shared.stats.cancelled.fetch_add(1, Ordering::Relaxed);
            ExecError::Cancelled.to_response(id)
        } else {
            shared.stats.deadline_expired.fetch_add(1, Ordering::Relaxed);
            ExecError::Deadline("deadline expired while queued for co-scheduling".to_string())
                .to_response(id)
        };
        let _ = entry.job.reply.send(Frame::Final(response));
    }
}

/// Completion hook of a co-scheduled job: release its reservation,
/// journal the release, and dispatch every queued job the freed
/// capacity lets the scheduler start.
fn finish_cosched(shared: &Shared, job_id: u64) {
    let Some(cosched) = &shared.cosched else { return };
    let mut state = cosched.lock().expect("cosched lock");
    reap_expired_waiting(shared, &mut state);
    let started = match state.sched.release(job_id) {
        Ok(started) => started,
        // Unknown job: the reservation was already withdrawn (admission
        // rollback) — nothing to release.
        Err(_) => return,
    };
    // A restored orphan (reservation replayed from the journal with no
    // live caller) occupied its tenant's quota since restart; releasing
    // it retires that occupancy into the cancelled bucket — the job's
    // real fate was decided by the previous process, this one never ran
    // it.
    if let Some(tenant) = state.restored_tenants.remove(&job_id) {
        tenant_bump(shared, Some(&tenant), |row| {
            row.in_flight = row.in_flight.saturating_sub(1);
            row.cancelled += 1;
        });
    }
    if let Some(journal) = &shared.journal {
        journal.append_release(job_id);
    }
    dispatch_started(shared, &mut state, started);
}

/// Moves jobs the scheduler just started from the wait map into the
/// worker queue, stamping each with its placement, wait time, and
/// backfill flag.
fn dispatch_started(
    shared: &Shared,
    state: &mut CoschedState,
    started: Vec<(u64, PlacementDecision)>,
) {
    for (id, decision) in started {
        let Some(entry) = state.waiting.remove(&id) else {
            // No reply handle (e.g. a restored-orphan id raced a live
            // one): the placement cannot run, so roll it back.
            state.sched.withdraw(id);
            continue;
        };
        // Started while an earlier-admitted job still waits = backfill.
        let backfilled = state.waiting.values().any(|w| w.seq < entry.seq);
        let queue_wait_ms = entry.enqueued.elapsed().as_secs_f64() * 1e3;
        let residual: Vec<u64> =
            state.sched.residency().residual().iter().map(|&c| u64::from(c)).collect();
        if let (Some(journal), Some(reservation)) =
            (&shared.journal, replayed_reservation(state, id, entry.job.request.tenant.as_ref()))
        {
            journal.append_reserve(&reservation);
        }
        if entry.job.request.progress.is_some() {
            let frame = Frame::Progress(Progress {
                id,
                body: ProgressBody::Submit {
                    queue_depth: None,
                    assignment: Some(decision.assignment.clone()),
                },
            });
            if entry.job.reply.send(frame).is_ok() {
                shared.stats.progress_frames_sent.fetch_add(1, Ordering::Relaxed);
            }
        }
        let tenant = entry.job.request.tenant.clone();
        let mut job = entry.job;
        job.cosched = Some(CoschedJob { decision, backfilled, queue_wait_ms, residual });
        // Dispatch keeps the job's lane: a waiting submit was already
        // admitted (its tenant row counts it in `in_queue`), so the
        // dequeue below competes fairly against direct traffic of the
        // same tenant.
        let lane = if shared.tenant_policy.is_active() {
            tenant.as_deref().map(|t| shared.tenants.lock().expect("tenants lock").resolve_name(t))
        } else {
            None
        };
        match shared.queue.try_push(lane.as_deref(), job) {
            Ok(()) => {}
            Err(PushError::Full(job)) => {
                state.sched.withdraw(id);
                if let Some(journal) = &shared.journal {
                    journal.append_release(id);
                }
                shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                // This job was *admitted* (it counted into `in_queue`
                // when it entered the wait map), so the rollback is a
                // cancellation, not an admission-time shed — `shed`
                // only ever counts jobs that never got in.
                tenant_bump(shared, tenant.as_ref(), |row| {
                    row.in_queue = row.in_queue.saturating_sub(1);
                    row.cancelled += 1;
                });
                let retry_after_ms = retry_hint_ms(shared);
                let _ = job
                    .reply
                    .send(Frame::Final(Rejected::Overloaded { retry_after_ms }.to_response(id)));
            }
            Err(PushError::Closed(job)) => {
                state.sched.withdraw(id);
                if let Some(journal) = &shared.journal {
                    journal.append_release(id);
                }
                tenant_bump(shared, tenant.as_ref(), |row| {
                    row.in_queue = row.in_queue.saturating_sub(1);
                    row.cancelled += 1;
                });
                let _ = job.reply.send(Frame::Final(Rejected::ShuttingDown.to_response(id)));
            }
        }
    }
}

/// The `attach` lookup shared between [`Service::attach`] (the inline
/// front-end path) and queued execution.
fn attach_response(shared: &Shared, id: u64, job: u64) -> Response {
    match shared.runs.get(&job.to_string()) {
        Some(stored) => match &*stored {
            Response::RunResult { ensemble_makespan, members, elapsed_ms, .. } => {
                Response::RunResult {
                    id,
                    ensemble_makespan: *ensemble_makespan,
                    members: members.clone(),
                    elapsed_ms: *elapsed_ms,
                }
            }
            other => Response::Error {
                id,
                kind: ErrorKind::Internal,
                message: format!("run index held a non-run response for job {job}: {other:?}"),
            },
        },
        None => Response::Error {
            id,
            kind: ErrorKind::NotFound,
            message: format!("no completed run with job id {job}"),
        },
    }
}

enum ExecError {
    Deadline(String),
    Cancelled,
    Invalid(String),
    Internal(String),
}

impl ExecError {
    fn to_response(&self, id: u64) -> Response {
        let (kind, message) = match self {
            ExecError::Deadline(detail) => (ErrorKind::Deadline, detail.clone()),
            ExecError::Cancelled => (ErrorKind::Cancelled, "request cancelled".to_string()),
            ExecError::Invalid(detail) => (ErrorKind::Invalid, detail.clone()),
            ExecError::Internal(detail) => (ErrorKind::Internal, detail.clone()),
        };
        Response::Error { id, kind, message }
    }
}

fn checkpoint(job: &Job, progress: impl Fn() -> String) -> Result<(), ExecError> {
    if job.cancel.is_cancelled() {
        return Err(ExecError::Cancelled);
    }
    if let Some(at) = job.deadline_at {
        if Instant::now() >= at {
            return Err(ExecError::Deadline(format!("deadline expired {}", progress())));
        }
    }
    Ok(())
}

/// Runs one job to its final response. The second value reports whether
/// the request body genuinely executed: `false` means the job was
/// drained pre-execution (already expired or cancelled at its entry
/// checkpoint), so its near-zero turnaround must not enter the
/// service-time mean.
fn execute(shared: &Shared, job: &Job) -> (Response, bool) {
    let id = job.request.id;
    let result = match &job.request.body {
        RequestBody::Score(score) => {
            if let Err(e) = checkpoint(job, || "before evaluation started".to_string()) {
                return (e.to_response(id), false);
            }
            execute_score(shared, job, score).map(|out| Response::ScoreResult {
                id,
                placements: out.placements,
                cached: out.cached,
                elapsed_ms: job.submitted.elapsed().as_secs_f64() * 1e3,
                scan_workers: out.scan_workers,
                candidates_scanned: out.candidates_scanned,
            })
        }
        RequestBody::Run(run) => {
            if let Err(e) = checkpoint(job, || "before the simulated run started".to_string()) {
                return (e.to_response(id), false);
            }
            execute_run(shared, job, run).map(|(makespan, members)| Response::RunResult {
                id,
                ensemble_makespan: makespan,
                members,
                elapsed_ms: job.submitted.elapsed().as_secs_f64() * 1e3,
            })
        }
        RequestBody::Submit(submit) => {
            // Drained expired/cancelled submits still release their
            // reservation — the worker loop's completion hook runs on
            // every exit path of a co-scheduled job.
            if let Err(e) = checkpoint(job, || "before the co-scheduled run started".to_string()) {
                return (e.to_response(id), false);
            }
            execute_submit(shared, job, submit)
        }
        // Attach requests are answered by the front end without
        // queueing (like metrics); one arriving here is still served
        // correctly from the same index.
        RequestBody::Attach { job: target } => Ok(attach_response(shared, id, *target)),
        // Metrics requests are answered by the front end without
        // queueing; one arriving here is still served correctly.
        RequestBody::Metrics => Ok(Response::Metrics { id, rows: Vec::new() }),
        // Replication streams are owned by the connection thread; a
        // worker cannot hold one open, so this is a routing error.
        RequestBody::Replicate => Err(ExecError::Invalid(
            "replication streams are served by the front end, not queued".to_string(),
        )),
    };
    (result.unwrap_or_else(|e| e.to_response(id)), true)
}

fn base_config(spec: ensemble_core::EnsembleSpec, workloads: Workloads) -> SimRunConfig {
    let mut cfg = SimRunConfig::paper(spec);
    if workloads == Workloads::Small {
        cfg.workloads = WorkloadMap::small_defaults();
    }
    cfg
}

/// Canonical cache key of a score request under the service's platform.
/// Built from the full query description plus the platform/workload
/// fingerprint — two keys are equal iff `fast_score` is guaranteed to
/// return bit-identical results (it is deterministic; see the
/// scheduler's determinism tests).
///
/// Every part serializes in a fixed order — in particular the workload
/// map goes through [`WorkloadMap::canonical_fingerprint`], which sorts
/// its per-component override HashMap before rendering. Nothing here may
/// ever iterate a HashMap in hash order: the key doubles as the journal
/// replay key, so a nondeterministic rendering would silently turn both
/// the cache and the restart warm-up into a miss machine.
fn score_cache_key(score: &ScoreRequest, cfg: &SimRunConfig) -> String {
    format!(
        "score:v2|shape={:?}|max_nodes={}|cores_per_node={}|steps={}|wl={:?}|wlmap={}|node={:?}|net={:?}|interf={:?}|bind={:?}",
        score.shape.members,
        score.budget.max_nodes,
        score.budget.cores_per_node,
        score.steps,
        score.workloads,
        cfg.workloads.canonical_fingerprint(),
        cfg.node_spec,
        cfg.network,
        cfg.interference,
        cfg.bind_policy,
    )
}

/// Decides when a progress observation is worth a frame, per the
/// request's [`ProgressSpec`]. Candidate cadence fires when the monotone
/// count crosses into a new `every_candidates` bucket (the scan reports
/// per chunk, so exact multiples are not guaranteed); time cadence fires
/// when `every_ms` has elapsed since the last emitted frame. An empty
/// spec (`"progress": {}`) defaults to the time cadence at
/// [`ProgressSpec::DEFAULT_EVERY_MS`].
struct ProgressThrottle {
    every_candidates: Option<u64>,
    every_ms: Option<u64>,
    last_bucket: u64,
    last_sent: Option<Instant>,
}

impl ProgressThrottle {
    fn new(spec: ProgressSpec) -> Self {
        let every_candidates = spec.every_candidates;
        let mut every_ms = spec.every_ms;
        if every_candidates.is_none() && every_ms.is_none() {
            every_ms = Some(ProgressSpec::DEFAULT_EVERY_MS);
        }
        ProgressThrottle { every_candidates, every_ms, last_bucket: 0, last_sent: None }
    }

    /// `count` is the job's monotone progress counter: candidates
    /// scanned for `score`, member step events for `run`.
    fn due(&mut self, count: u64) -> bool {
        let mut due = false;
        if let Some(n) = self.every_candidates {
            let bucket = count / n.max(1);
            if bucket > self.last_bucket {
                self.last_bucket = bucket;
                due = true;
            }
        }
        if let Some(ms) = self.every_ms {
            match self.last_sent {
                None => due = true,
                Some(at) if at.elapsed() >= Duration::from_millis(ms) => due = true,
                _ => {}
            }
        }
        if due {
            self.last_sent = Some(Instant::now());
        }
        due
    }
}

/// Sends throttled [`Frame::Progress`] frames down a job's reply
/// channel. Send failures (the reply handle was dropped) are ignored —
/// the scan's cancel probe, not the emitter, decides when to stop.
struct ProgressEmitter {
    id: u64,
    reply: mpsc::Sender<Frame>,
    throttle: ProgressThrottle,
}

impl ProgressEmitter {
    fn new(spec: ProgressSpec, job: &Job) -> Self {
        ProgressEmitter {
            id: job.request.id,
            reply: job.reply.clone(),
            throttle: ProgressThrottle::new(spec),
        }
    }

    fn observe_scan(&mut self, p: &ScanProgress, stats: &SvcStats) {
        if !self.throttle.due(p.scanned as u64) {
            return;
        }
        let frame = Frame::Progress(Progress {
            id: self.id,
            body: ProgressBody::Score {
                candidates_scanned: p.scanned as u64,
                best_objective: p.best_objective,
                workers: p.workers as u64,
            },
        });
        if self.reply.send(frame).is_ok() {
            stats.progress_frames_sent.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn observe_run(&mut self, member_steps: &[u64], events: u64, stats: &SvcStats) {
        if !self.throttle.due(events) {
            return;
        }
        // The headline step count is the ensemble frontier — the lowest
        // member step — so it never runs ahead of a straggler.
        let steps = member_steps.iter().copied().min().unwrap_or(0);
        let frame = Frame::Progress(Progress {
            id: self.id,
            body: ProgressBody::Run { steps, member_steps: member_steps.to_vec() },
        });
        if self.reply.send(frame).is_ok() {
            stats.progress_frames_sent.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// What a score execution produced, beyond the placements themselves.
struct ScoreExec {
    placements: Vec<RankedPlacement>,
    cached: bool,
    /// Workers the scan ran with; zero on cache hits (no scan ran).
    scan_workers: u64,
    /// Candidates evaluated; zero on cache hits.
    candidates_scanned: u64,
}

fn execute_score(shared: &Shared, job: &Job, score: &ScoreRequest) -> Result<ScoreExec, ExecError> {
    let placeholder = score.shape.materialize(&vec![0; score.shape.num_components()]);
    let mut cfg = base_config(placeholder, score.workloads);
    cfg.n_steps = score.steps;
    let key = score_cache_key(score, &cfg);
    // A full ranking serves any top_k by truncation. A bounded scan
    // holds only its own first K, so it caches under a k-suffixed key
    // that never masquerades as the full result (bounded top-K equals
    // the first K of the stable full ranking, so truncation and bounded
    // scan are byte-identical answers).
    if let Some(ranked) = shared.cache.get(&key) {
        let mut placements: Vec<RankedPlacement> = (*ranked).clone();
        if score.top_k > 0 {
            placements.truncate(score.top_k);
        }
        return Ok(ScoreExec { placements, cached: true, scan_workers: 0, candidates_scanned: 0 });
    }
    let bounded_key = (score.top_k > 0).then(|| format!("{key}|k={}", score.top_k));
    if let Some(bk) = &bounded_key {
        if let Some(ranked) = shared.cache.get(bk) {
            return Ok(ScoreExec {
                placements: (*ranked).clone(),
                cached: true,
                scan_workers: 0,
                candidates_scanned: 0,
            });
        }
    }

    let opts = ScanOptions {
        workers: if score.workers != 0 { score.workers } else { shared.scan_workers },
        top_k: score.top_k,
        ..ScanOptions::default()
    };
    // Progress-opted requests get throttled interim frames from the
    // scan's per-chunk hook. The hook runs under the scan's feed lock
    // (worker threads take turns), so one mutex around the emitter is
    // uncontended; non-opted requests pay nothing.
    let emitter = job.request.progress.map(|spec| Mutex::new(ProgressEmitter::new(spec, job)));
    // Delta scoring: per-worker evaluators re-solve only nodes whose
    // occupancy changed between successive candidates — bit-identical
    // to the from-scratch path, so cache keys and journal replays are
    // unaffected.
    let outcome = scan_placements_delta_observed(
        &score.shape,
        score.budget,
        &opts,
        || DeltaEvaluator::new(&cfg, &score.shape),
        |evaluator: &mut DeltaEvaluator,
         _,
         assignment: &[usize],
         hint: Option<usize>|
         -> Result<Option<RankedPlacement>, ExecError> {
            let fs = evaluator
                .score_delta(assignment, hint)
                .map_err(|e| ExecError::Invalid(format!("candidate {assignment:?}: {e}")))?;
            Ok(Some(RankedPlacement {
                assignment: assignment.to_vec(),
                objective: fs.objective,
                nodes_used: fs.nodes_used,
                ensemble_makespan: fs.ensemble_makespan,
                eq4_satisfied: fs.eq4_satisfied,
            }))
        },
        DeltaEvaluator::take_counters,
        |p: &RankedPlacement| p.objective,
        || job.cancel.is_cancelled() || job.deadline_at.is_some_and(|at| Instant::now() >= at),
        |p: &ScanProgress| {
            if let Some(emitter) = &emitter {
                emitter.lock().expect("progress emitter lock").observe_scan(p, &shared.stats);
            }
        },
    )?;
    shared.stats.candidates_scanned.fetch_add(outcome.scanned as u64, Ordering::Relaxed);
    shared.stats.delta_solve_hits.fetch_add(outcome.delta.solve_hits, Ordering::Relaxed);
    shared.stats.delta_solve_misses.fetch_add(outcome.delta.solve_misses, Ordering::Relaxed);
    shared
        .stats
        .delta_members_recomputed
        .fetch_add(outcome.delta.members_recomputed, Ordering::Relaxed);
    if outcome.cancelled {
        // The scan stopped between chunks; report which trigger fired
        // (deadline beats cancel in `checkpoint`, matching the serial
        // path's precedence).
        let scanned = outcome.scanned;
        checkpoint(job, || format!("after {scanned} candidates"))?;
        return Err(ExecError::Cancelled);
    }
    let scan_workers = outcome.workers as u64;
    let candidates_scanned = outcome.scanned as u64;
    let mut ranked = outcome.into_values();
    if score.top_k == 0 {
        // Enumeration order → ranked best-first, exactly as the serial
        // path always sorted (stable: ties keep enumeration order).
        ranked.sort_by(|a, b| b.objective.total_cmp(&a.objective));
    }
    let store_key = bounded_key.unwrap_or(key);
    if let Some(journal) = &shared.journal {
        // The ranking exactly as cached (full, or bounded under its
        // k-suffixed key) — what a replay re-inserts.
        journal.append_score(&store_key, &ranked);
    }
    shared.cache.insert(store_key, ranked.clone());
    Ok(ScoreExec { placements: ranked, cached: false, scan_workers, candidates_scanned })
}

fn execute_run(
    shared: &Shared,
    job: &Job,
    run: &RunRequest,
) -> Result<(f64, Vec<MemberSummary>), ExecError> {
    run.spec.validate(None).map_err(|e| ExecError::Invalid(format!("invalid spec: {e}")))?;
    let mut cfg = base_config(run.spec.clone(), run.workloads);
    cfg.n_steps = run.steps;
    cfg.jitter = run.jitter;
    cfg.seed = run.seed;
    run_and_report(shared, job, cfg)
}

/// Runs a co-scheduled `submit` job at its reserved placement and wraps
/// the run summary with the placement metadata admission decided.
fn execute_submit(
    shared: &Shared,
    job: &Job,
    submit: &SubmitRequest,
) -> Result<Response, ExecError> {
    let cosched = job.cosched.as_ref().ok_or_else(|| {
        ExecError::Internal("submit job reached a worker without a reservation".to_string())
    })?;
    let spec = submit.shape.materialize(&cosched.decision.assignment);
    spec.validate(None)
        .map_err(|e| ExecError::Internal(format!("placed spec failed validation: {e}")))?;
    let mut cfg = base_config(spec, submit.workloads);
    cfg.n_steps = submit.steps;
    cfg.jitter = submit.jitter;
    cfg.seed = submit.seed;
    let (ensemble_makespan, members) = run_and_report(shared, job, cfg)?;
    Ok(Response::SubmitResult {
        id: job.request.id,
        assignment: cosched.decision.assignment.clone(),
        objective: cosched.decision.objective,
        nodes_used: cosched.decision.nodes_used as u64,
        backfilled: cosched.backfilled,
        queue_wait_ms: cosched.queue_wait_ms,
        residual: cosched.residual.clone(),
        ensemble_makespan,
        members,
        elapsed_ms: job.submitted.elapsed().as_secs_f64() * 1e3,
    })
}

/// The shared run machinery of `run` and `submit`: simulate `cfg`
/// (streaming member-step progress frames for opted-in requests) and
/// summarize the report.
fn run_and_report(
    shared: &Shared,
    job: &Job,
    cfg: SimRunConfig,
) -> Result<(f64, Vec<MemberSummary>), ExecError> {
    let spec = cfg.spec.clone();
    // The DES run itself is not interruptible; deadlines are enforced at
    // the checkpoints around it (and per candidate on the score path).
    // Progress-opted requests observe every member step and stream
    // throttled frames whose headline is the ensemble frontier.
    let exec = match job.request.progress {
        Some(spec) => {
            let mut emitter = ProgressEmitter::new(spec, job);
            let mut member_steps = vec![0u64; cfg.spec.members.len()];
            let mut events = 0u64;
            runtime::run_simulated_observed(&cfg, &mut |member, done| {
                if let Some(slot) = member_steps.get_mut(member) {
                    *slot = done;
                }
                events += 1;
                emitter.observe_run(&member_steps, events, &shared.stats);
            })
        }
        None => runtime::run_simulated(&cfg),
    }
    .map_err(|e| ExecError::Invalid(format!("run failed: {e}")))?;
    checkpoint(job, || "after the simulated run, before reporting".to_string())?;
    let report =
        runtime::build_report("svc-run", &spec, &exec, cfg.n_steps, WarmupPolicy::default())
            .map_err(|e| ExecError::Internal(format!("report failed: {e}")))?;
    let members = report
        .members
        .iter()
        .map(|m| MemberSummary {
            sigma_star: m.sigma_star,
            efficiency: m.efficiency,
            cp: m.cp,
            makespan: m.makespan,
        })
        .collect();
    Ok((report.ensemble_makespan, members))
}

/// Convenience: score request against the small workloads (tests,
/// benches, examples).
pub fn small_score_request(
    id: u64,
    n: usize,
    sim_cores: u32,
    k: usize,
    ana_cores: u32,
    max_nodes: usize,
) -> Request {
    Request {
        id,
        deadline: None,
        progress: None,
        tenant: None,
        body: RequestBody::Score(ScoreRequest {
            shape: scheduler::EnsembleShape::uniform(n, sim_cores, k, ana_cores),
            budget: scheduler::NodeBudget { max_nodes, cores_per_node: 32 },
            top_k: 0,
            steps: 6,
            workloads: Workloads::Small,
            workers: 0,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemble_core::ConfigId;

    fn tiny_service(workers: usize, queue: usize) -> Service {
        Service::start(SvcConfig {
            workers,
            queue_capacity: queue,
            cache_capacity: 16,
            default_deadline: None,
            journal: None,
            panic_on_request_id: None,
            scan_workers: 0,
            cosched: None,
            tenant_policy: TenantPolicy::default(),
        })
    }

    fn run_request(id: u64, steps: u64) -> Request {
        Request {
            id,
            deadline: None,
            progress: None,
            tenant: None,
            body: RequestBody::Run(RunRequest {
                spec: ConfigId::C1_5.build(),
                steps,
                jitter: 0.0,
                seed: 1,
                workloads: Workloads::Small,
            }),
        }
    }

    #[test]
    fn score_request_returns_ranked_placements() {
        let svc = tiny_service(2, 8);
        let pending = svc.submit(small_score_request(9, 2, 16, 1, 8, 3)).unwrap();
        match pending.wait() {
            Response::ScoreResult { id, placements, cached, .. } => {
                assert_eq!(id, 9);
                assert!(!cached);
                assert!(!placements.is_empty());
                for w in placements.windows(2) {
                    assert!(w[0].objective >= w[1].objective, "ranked best-first");
                }
                // The paper's conclusion: the best placement co-locates
                // each member on its own node.
                assert_eq!(placements[0].nodes_used, 2);
            }
            other => panic!("expected score result, got {other:?}"),
        }
    }

    #[test]
    fn identical_scores_hit_the_cache() {
        let svc = tiny_service(2, 8);
        let first = svc.submit(small_score_request(1, 2, 16, 1, 8, 3)).unwrap().wait();
        let second = svc.submit(small_score_request(2, 2, 16, 1, 8, 3)).unwrap().wait();
        match (&first, &second) {
            (
                Response::ScoreResult { cached: c1, placements: p1, .. },
                Response::ScoreResult { cached: c2, placements: p2, .. },
            ) => {
                assert!(!c1);
                assert!(c2, "second identical query must be served from cache");
                assert_eq!(p1.len(), p2.len());
                for (a, b) in p1.iter().zip(p2) {
                    assert_eq!(a.objective.to_bits(), b.objective.to_bits());
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        let m = svc.metrics();
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.cache_misses, 1);
        assert!((m.cache_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn run_request_summarizes_report() {
        let svc = tiny_service(1, 4);
        match svc.submit(run_request(5, 6)).unwrap().wait() {
            Response::RunResult { id, ensemble_makespan, members, .. } => {
                assert_eq!(id, 5);
                assert!(ensemble_makespan > 0.0);
                assert_eq!(members.len(), 2);
                for m in &members {
                    assert!(m.efficiency > 0.0 && m.efficiency <= 1.0);
                    assert!((m.cp - 1.0).abs() < 1e-12, "C1.5 is fully co-located");
                }
            }
            other => panic!("expected run result, got {other:?}"),
        }
    }

    #[test]
    fn overload_sheds_instead_of_blocking() {
        // One worker busy with a long run; capacity-1 queue holds one
        // more; the next submit must shed immediately.
        let svc = tiny_service(1, 1);
        let slow = svc.submit(run_request(1, 400)).unwrap();
        // Wait until the slow job occupies the worker so queue slots are
        // observable deterministically.
        let deadline = Instant::now() + Duration::from_secs(10);
        while svc.metrics().in_flight == 0 {
            assert!(Instant::now() < deadline, "worker never picked up the job");
            std::thread::yield_now();
        }
        let queued = svc.submit(small_score_request(2, 2, 16, 1, 8, 3)).unwrap();
        let before = Instant::now();
        let shed = svc.submit(small_score_request(3, 2, 16, 1, 8, 3));
        assert!(before.elapsed() < Duration::from_millis(100), "shedding must not block");
        match shed {
            Err(Rejected::Overloaded { retry_after_ms }) => assert!(retry_after_ms >= 1),
            other => panic!("expected overload, got {other:?}"),
        }
        assert!(matches!(slow.wait(), Response::RunResult { .. }));
        assert!(matches!(queued.wait(), Response::ScoreResult { .. }));
        let m = svc.metrics();
        assert_eq!(m.rejected, 1);
        assert_eq!(m.accepted, 2);
    }

    #[test]
    fn expired_deadline_is_reported_not_executed() {
        let svc = tiny_service(1, 4);
        let mut req = run_request(1, 6);
        req.deadline = Some(Duration::ZERO);
        match svc.submit(req).unwrap().wait() {
            Response::Error { kind: ErrorKind::Deadline, message, .. } => {
                assert!(message.contains("deadline expired"), "{message}");
            }
            other => panic!("expected deadline error, got {other:?}"),
        }
        assert_eq!(svc.metrics().deadline_expired, 1);
    }

    #[test]
    fn cancellation_is_cooperative() {
        let svc = tiny_service(1, 4);
        // Occupy the worker so the target request sits queued when the
        // cancel lands — deterministic cancellation-before-execution.
        let blocker = svc.submit(run_request(1, 200)).unwrap();
        let victim = svc.submit(small_score_request(2, 2, 16, 1, 8, 3)).unwrap();
        victim.cancel();
        assert!(matches!(blocker.wait(), Response::RunResult { .. }));
        match victim.wait() {
            Response::Error { kind: ErrorKind::Cancelled, .. } => {}
            other => panic!("expected cancelled, got {other:?}"),
        }
        assert_eq!(svc.metrics().cancelled, 1);
    }

    #[test]
    fn shutdown_drains_accepted_work() {
        let svc = tiny_service(1, 8);
        let mut pendings = Vec::new();
        for i in 0..4 {
            pendings.push(svc.submit(small_score_request(i, 2, 16, 1, 8, 2)).unwrap());
        }
        svc.shutdown();
        // Every accepted request still gets its real answer.
        for p in pendings {
            assert!(matches!(p.wait(), Response::ScoreResult { .. }));
        }
        // New work is refused once shut down.
        assert_eq!(
            svc.submit(small_score_request(99, 2, 16, 1, 8, 2)).err(),
            Some(Rejected::ShuttingDown)
        );
    }

    #[test]
    fn infeasible_budget_is_an_invalid_error() {
        let svc = tiny_service(1, 4);
        // 2×(16+8) cores cannot fit one 32-core node → empty enumeration
        // → empty ranking (not an error), while a malformed spec errors.
        match svc.submit(small_score_request(1, 2, 16, 1, 8, 1)).unwrap().wait() {
            Response::ScoreResult { placements, .. } => assert!(placements.is_empty()),
            other => panic!("expected empty score result, got {other:?}"),
        }
    }

    #[test]
    fn cold_start_retry_hint_scales_with_backlog() {
        // Regression: before any request completes, the hint used to
        // collapse to 1 ms regardless of backlog (zero observed mean ×
        // anything = 0, floored to 1) — every shed client retried at
        // once. The cold-start seed must make it scale with queue depth.
        let svc = tiny_service(1, 8);
        let empty_hint = svc.retry_after_hint_ms();
        let cold_ms = COLD_START_SERVICE_TIME.as_millis() as u64;
        assert!(empty_hint >= cold_ms, "empty-queue cold hint {empty_hint} < seed {cold_ms}");
        // Occupy the single worker so queued work stays queued.
        let blocker = svc.submit(run_request(1, 400)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while svc.metrics().in_flight == 0 {
            assert!(Instant::now() < deadline, "worker never picked up the job");
            std::thread::yield_now();
        }
        let mut queued = Vec::new();
        for i in 0..8 {
            queued.push(svc.submit(small_score_request(10 + i, 2, 16, 1, 8, 3)).unwrap());
        }
        let full_hint = svc.retry_after_hint_ms();
        assert!(
            full_hint >= empty_hint.saturating_mul(8),
            "hint must scale with backlog: empty {empty_hint}ms, 8-deep {full_hint}ms"
        );
        assert!(matches!(blocker.wait(), Response::RunResult { .. }));
        for p in queued {
            assert!(matches!(p.wait(), Response::ScoreResult { .. }));
        }
    }

    #[test]
    fn deadline_budget_seeds_the_cold_start_hint() {
        let svc = Service::start(SvcConfig {
            workers: 1,
            queue_capacity: 4,
            cache_capacity: 16,
            default_deadline: Some(Duration::from_secs(2)),
            journal: None,
            panic_on_request_id: None,
            scan_workers: 0,
            cosched: None,
            tenant_policy: TenantPolicy::default(),
        });
        assert!(
            svc.retry_after_hint_ms() >= 2000,
            "a configured deadline budget outranks the generic cold-start seed"
        );
    }

    #[test]
    fn independently_built_identical_queries_share_a_cache_key() {
        // Byte-identical keys from independently built (but equal)
        // specs: nothing in the key builder may iterate a HashMap in
        // hash order. String equality is byte equality.
        let key_of = || {
            let req = small_score_request(1, 2, 16, 1, 8, 3);
            let RequestBody::Score(score) = req.body else { unreachable!() };
            let placeholder = score.shape.materialize(&vec![0; score.shape.num_components()]);
            let mut cfg = base_config(placeholder, score.workloads);
            cfg.n_steps = score.steps;
            score_cache_key(&score, &cfg)
        };
        let (a, b) = (key_of(), key_of());
        assert_eq!(a, b);
        assert!(a.contains("wlmap="), "key carries the workload-map fingerprint: {a}");
    }

    #[test]
    fn attach_replays_a_completed_run_in_process() {
        let svc = tiny_service(1, 4);
        let done = svc.submit(run_request(41, 6)).unwrap().wait();
        let Response::RunResult { ensemble_makespan, .. } = &done else {
            panic!("expected run result, got {done:?}");
        };
        match svc.attach(7, 41) {
            Response::RunResult { id, ensemble_makespan: m, .. } => {
                assert_eq!(id, 7, "attach answers under its own correlation id");
                assert_eq!(m.to_bits(), ensemble_makespan.to_bits());
            }
            other => panic!("expected run result, got {other:?}"),
        }
        match svc.attach(8, 999) {
            Response::Error { kind: ErrorKind::NotFound, message, .. } => {
                assert!(message.contains("999"), "{message}");
            }
            other => panic!("expected not_found, got {other:?}"),
        }
        assert_eq!(svc.metrics().run_index_entries, 1);
    }

    /// A score request over a space large enough that a short deadline
    /// expires mid-scan (10 components on up to 8 nodes enumerate into
    /// the hundreds of thousands).
    fn big_score_request(id: u64) -> Request {
        Request {
            id,
            deadline: None,
            progress: None,
            tenant: None,
            body: RequestBody::Score(ScoreRequest {
                shape: scheduler::EnsembleShape::uniform(5, 4, 1, 4),
                budget: scheduler::NodeBudget { max_nodes: 8, cores_per_node: 32 },
                top_k: 0,
                steps: 6,
                workloads: Workloads::Small,
                workers: 1,
            }),
        }
    }

    fn big_space_total() -> usize {
        scheduler::enumerate_placements(&scheduler::EnsembleShape::uniform(5, 4, 1, 4), 8, 32).len()
    }

    /// A score over a ~4k-candidate space: big enough for dozens of
    /// per-64-candidate progress frames, small enough that a full debug
    /// scan finishes in seconds on one core.
    fn medium_score_request(id: u64) -> Request {
        Request {
            id,
            deadline: None,
            progress: None,
            tenant: None,
            body: RequestBody::Score(ScoreRequest {
                shape: scheduler::EnsembleShape::uniform(4, 4, 1, 4),
                budget: scheduler::NodeBudget { max_nodes: 6, cores_per_node: 32 },
                top_k: 0,
                steps: 6,
                workloads: Workloads::Small,
                workers: 1,
            }),
        }
    }

    fn medium_space_total() -> usize {
        scheduler::enumerate_placements(&scheduler::EnsembleShape::uniform(4, 4, 1, 4), 6, 32).len()
    }

    #[test]
    fn deadline_expiring_mid_scan_stops_the_scan() {
        let svc = tiny_service(1, 4);
        let mut req = big_score_request(1);
        // Long enough to survive submit→pop, far too short for the full
        // enumeration.
        req.deadline = Some(Duration::from_millis(40));
        match svc.submit(req).unwrap().wait() {
            Response::Error { kind: ErrorKind::Deadline, message, .. } => {
                assert!(message.contains("deadline expired"), "{message}");
            }
            other => panic!("expected deadline error, got {other:?}"),
        }
        let scanned = svc.metrics().candidates_scanned;
        let total = big_space_total() as u64;
        assert!(
            scanned < total / 2,
            "the scan must stop well short of the full space: {scanned} of {total}"
        );
        assert_eq!(svc.metrics().deadline_expired, 1);
    }

    #[test]
    fn cancellation_mid_scan_stops_the_scan() {
        let svc = tiny_service(1, 4);
        let pending = svc.submit(big_score_request(2)).unwrap();
        // Wait until the scan is executing, then cancel: the probe
        // between chunks must abandon the remaining space.
        let deadline = Instant::now() + Duration::from_secs(10);
        while svc.metrics().in_flight == 0 {
            assert!(Instant::now() < deadline, "worker never picked up the job");
            std::thread::yield_now();
        }
        pending.cancel();
        match pending.wait() {
            Response::Error { kind: ErrorKind::Cancelled, .. } => {}
            other => panic!("expected cancelled, got {other:?}"),
        }
        let scanned = svc.metrics().candidates_scanned;
        let total = big_space_total() as u64;
        assert!(scanned < total, "cancel must stop before the full space: {scanned} of {total}");
        assert_eq!(svc.metrics().cancelled, 1);
    }

    #[test]
    fn score_responses_carry_scan_metadata() {
        let svc = tiny_service(1, 4);
        let total =
            scheduler::enumerate_placements(&scheduler::EnsembleShape::uniform(2, 16, 1, 8), 3, 32)
                .len() as u64;
        match svc.submit(small_score_request(1, 2, 16, 1, 8, 3)).unwrap().wait() {
            Response::ScoreResult { cached, scan_workers, candidates_scanned, .. } => {
                assert!(!cached);
                assert!(scan_workers >= 1);
                assert_eq!(candidates_scanned, total);
            }
            other => panic!("expected score result, got {other:?}"),
        }
        assert_eq!(svc.metrics().candidates_scanned, total);
        // A cache hit scans nothing and says so.
        match svc.submit(small_score_request(2, 2, 16, 1, 8, 3)).unwrap().wait() {
            Response::ScoreResult { cached, scan_workers, candidates_scanned, .. } => {
                assert!(cached);
                assert_eq!(scan_workers, 0);
                assert_eq!(candidates_scanned, 0);
            }
            other => panic!("expected score result, got {other:?}"),
        }
        assert_eq!(svc.metrics().candidates_scanned, total, "hits add nothing");
    }

    #[test]
    fn score_scans_report_delta_cache_counters() {
        let svc = tiny_service(1, 4);
        let m0 = svc.metrics();
        assert_eq!(
            (m0.delta_solve_hits, m0.delta_solve_misses, m0.delta_members_recomputed),
            (0, 0, 0)
        );
        match svc.submit(small_score_request(1, 2, 16, 1, 8, 3)).unwrap().wait() {
            Response::ScoreResult { cached, .. } => assert!(!cached),
            other => panic!("expected score result, got {other:?}"),
        }
        let m1 = svc.metrics();
        assert!(m1.delta_solve_misses > 0, "an uncached scan must run solves");
        assert!(
            m1.delta_solve_hits > 0,
            "the enumeration revisits occupancy signatures — some solves must be cache hits"
        );
        assert!(m1.delta_members_recomputed > 0);
        // A score-cache hit runs no scan: counters must not move.
        match svc.submit(small_score_request(2, 2, 16, 1, 8, 3)).unwrap().wait() {
            Response::ScoreResult { cached, .. } => assert!(cached),
            other => panic!("expected score result, got {other:?}"),
        }
        let m2 = svc.metrics();
        assert_eq!(m2.delta_solve_hits, m1.delta_solve_hits);
        assert_eq!(m2.delta_solve_misses, m1.delta_solve_misses);
        assert_eq!(m2.delta_members_recomputed, m1.delta_members_recomputed);
    }

    #[test]
    fn request_workers_override_the_service_default() {
        let svc = tiny_service(1, 4);
        let mut req = small_score_request(1, 2, 16, 1, 8, 3);
        if let RequestBody::Score(ref mut s) = req.body {
            s.workers = 2;
        }
        match svc.submit(req).unwrap().wait() {
            Response::ScoreResult { scan_workers, .. } => assert_eq!(scan_workers, 2),
            other => panic!("expected score result, got {other:?}"),
        }
    }

    #[test]
    fn bounded_top_k_matches_the_truncated_full_ranking() {
        let svc = tiny_service(1, 8);
        // Full ranking first, on its own service so the bounded query
        // below starts cold.
        let full = match svc.submit(small_score_request(1, 2, 16, 1, 8, 3)).unwrap().wait() {
            Response::ScoreResult { placements, .. } => placements,
            other => panic!("expected score result, got {other:?}"),
        };
        assert!(full.len() > 3);
        let cold = tiny_service(1, 8);
        let mut bounded_req = small_score_request(2, 2, 16, 1, 8, 3);
        if let RequestBody::Score(ref mut s) = bounded_req.body {
            s.top_k = 3;
        }
        let bounded = match cold.submit(bounded_req.clone()).unwrap().wait() {
            Response::ScoreResult { placements, cached, .. } => {
                assert!(!cached);
                placements
            }
            other => panic!("expected score result, got {other:?}"),
        };
        assert_eq!(bounded.len(), 3);
        for (b, f) in bounded.iter().zip(&full) {
            assert_eq!(b.assignment, f.assignment);
            assert_eq!(b.objective.to_bits(), f.objective.to_bits());
            assert_eq!(b.ensemble_makespan.to_bits(), f.ensemble_makespan.to_bits());
        }
        // The bounded result was cached under its k-key: a repeat hits.
        match cold.submit(bounded_req).unwrap().wait() {
            Response::ScoreResult { cached, placements, .. } => {
                assert!(cached, "repeat bounded query must hit the k-keyed entry");
                assert_eq!(placements.len(), 3);
            }
            other => panic!("expected score result, got {other:?}"),
        }
        // But a later full query must NOT be served from the bounded
        // entry — it runs the full scan.
        match cold.submit(small_score_request(3, 2, 16, 1, 8, 3)).unwrap().wait() {
            Response::ScoreResult { cached, placements, .. } => {
                assert!(!cached, "a bounded entry must never serve a full query");
                assert_eq!(placements.len(), full.len());
            }
            other => panic!("expected score result, got {other:?}"),
        }
    }

    #[test]
    fn latency_percentiles_populate() {
        let svc = tiny_service(2, 8);
        for i in 0..6 {
            let _ = svc.submit(small_score_request(i, 2, 16, 1, 8, 2)).unwrap().wait();
        }
        let m = svc.metrics();
        assert_eq!(m.completed, 6);
        assert!(m.latency_p50_ms > 0.0);
        assert!(m.latency_p50_ms <= m.latency_p95_ms);
        assert!(m.latency_p95_ms <= m.latency_p99_ms);
    }

    #[test]
    fn progress_opted_score_streams_monotone_frames_then_the_final() {
        let svc = tiny_service(1, 4);
        let mut req = medium_score_request(1);
        // One frame per 64-candidate bucket: deterministic in the space
        // size, independent of wall-clock speed.
        req.progress = Some(ProgressSpec { every_candidates: Some(64), every_ms: None });
        let pending = svc.submit(req).unwrap();
        let mut seen = Vec::new();
        let response = pending.wait_with(|p| {
            assert_eq!(p.id, 1, "frames carry the request id");
            match &p.body {
                ProgressBody::Score { candidates_scanned, workers, .. } => {
                    seen.push(*candidates_scanned);
                    assert_eq!(*workers, 1);
                }
                other => panic!("expected score progress, got {other:?}"),
            }
        });
        let total = medium_space_total() as u64;
        match response {
            Response::ScoreResult { candidates_scanned, .. } => {
                assert_eq!(candidates_scanned, total);
            }
            other => panic!("expected score result, got {other:?}"),
        }
        assert!(
            seen.len() >= 2,
            "a {total}-candidate scan at one frame per 64 must stream several frames: {seen:?}"
        );
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "monotone counts: {seen:?}");
        assert!(seen.iter().all(|&c| c <= total));
        let m = svc.metrics();
        assert_eq!(m.progress_frames_sent, seen.len() as u64);
    }

    #[test]
    fn progress_opted_run_streams_the_ensemble_frontier() {
        let svc = tiny_service(1, 4);
        let mut req = run_request(3, 12);
        // Every step event: C1.5 has 2 members × 12 steps = 24 frames.
        req.progress = Some(ProgressSpec { every_candidates: Some(1), every_ms: None });
        let pending = svc.submit(req).unwrap();
        let mut frames = Vec::new();
        let response = pending.wait_with(|p| match &p.body {
            ProgressBody::Run { steps, member_steps } => {
                frames.push((*steps, member_steps.clone()));
            }
            other => panic!("expected run progress, got {other:?}"),
        });
        assert!(matches!(response, Response::RunResult { .. }), "got {response:?}");
        assert_eq!(frames.len(), 24, "one frame per member step event");
        for (steps, member_steps) in &frames {
            assert_eq!(member_steps.len(), 2);
            assert_eq!(
                *steps,
                *member_steps.iter().min().unwrap(),
                "the headline is the ensemble frontier"
            );
        }
        let (final_steps, final_members) = frames.last().unwrap();
        assert_eq!(*final_steps, 12);
        assert!(final_members.iter().all(|&s| s == 12));
        assert_eq!(svc.metrics().progress_frames_sent, 24);
    }

    #[test]
    fn non_opted_requests_see_no_progress_frames() {
        let svc = tiny_service(1, 4);
        let pending = svc.submit(medium_score_request(1)).unwrap();
        let mut frames = 0usize;
        let response = pending.wait_with(|_| frames += 1);
        assert!(matches!(response, Response::ScoreResult { .. }));
        assert_eq!(frames, 0, "no opt-in, no frames");
        assert_eq!(svc.metrics().progress_frames_sent, 0);
    }

    #[test]
    fn queue_drained_jobs_do_not_deflate_the_retry_hint() {
        // Regression for the hint-deflation bug: a worker draining a
        // backlog of already-expired jobs used to fold their near-zero
        // turnaround into the service-time mean, collapsing
        // `retry_after_hint_ms` while the pool was still saturated.
        let svc = tiny_service(1, 16);
        // One genuinely executed job establishes a real mean.
        assert!(matches!(
            svc.submit(small_score_request(1, 2, 16, 1, 8, 3)).unwrap().wait(),
            Response::ScoreResult { .. }
        ));
        let m = svc.metrics();
        assert_eq!(m.executed, 1);
        let hint_before = svc.retry_after_hint_ms();
        // A pile of born-expired jobs drains without executing.
        let mut drained = Vec::new();
        for i in 0..10 {
            let mut req = small_score_request(100 + i, 2, 16, 1, 8, 3);
            req.deadline = Some(Duration::ZERO);
            drained.push(svc.submit(req).unwrap());
        }
        for p in drained {
            assert!(matches!(p.wait(), Response::Error { kind: ErrorKind::Deadline, .. }));
        }
        let m = svc.metrics();
        assert_eq!(m.executed, 1, "drained jobs must not count as executed");
        assert_eq!(m.deadline_expired, 10);
        let hint_after = svc.retry_after_hint_ms();
        assert!(
            hint_after >= hint_before,
            "10 near-zero drains must not deflate the hint: {hint_before}ms -> {hint_after}ms"
        );
    }
}
