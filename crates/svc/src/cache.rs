//! Memoized score cache.
//!
//! Score queries are pure functions of (spec shape, node budget,
//! platform, workload map, evaluation settings) — `fast_score` is
//! deterministic (see the scheduler's determinism tests), so identical
//! queries can be answered from memory without touching the predictor.
//! Keys are the *canonical description string* of the query, not a hash
//! of it: collisions are then impossible by construction, and the key
//! doubles as a debugging artifact.
//!
//! Eviction is FIFO at a fixed capacity — cheap, deterministic, and good
//! enough for a cache whose entries are all equally expensive to rebuild.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

struct Inner<V> {
    map: HashMap<String, Arc<V>>,
    order: VecDeque<String>,
}

/// A bounded memo table with hit/miss accounting.
pub struct ScoreCache<V> {
    inner: Mutex<Inner<V>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<V> ScoreCache<V> {
    /// A cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        ScoreCache {
            inner: Mutex::new(Inner { map: HashMap::new(), order: VecDeque::new() }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up `key`, counting a hit or miss.
    pub fn get(&self, key: &str) -> Option<Arc<V>> {
        let inner = self.inner.lock().expect("cache lock");
        match inner.map.get(key) {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(v))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts `value` under `key`, evicting the oldest entry at
    /// capacity. Re-inserting an existing key refreshes its FIFO slot —
    /// the entry becomes the newest, not a candidate carrying its
    /// original age into the next eviction. Racing inserts of the same
    /// key keep the newer value (both are correct: entries are
    /// deterministic functions of the key).
    pub fn insert(&self, key: String, value: V) -> Arc<V> {
        let value = Arc::new(value);
        let mut inner = self.inner.lock().expect("cache lock");
        if inner.map.insert(key.clone(), Arc::clone(&value)).is_some() {
            // Refresh: drop the stale slot so the push below re-ages it.
            if let Some(pos) = inner.order.iter().position(|k| *k == key) {
                inner.order.remove(pos);
            }
        }
        inner.order.push_back(key);
        if inner.order.len() > self.capacity {
            if let Some(evicted) = inner.order.pop_front() {
                inner.map.remove(&evicted);
            }
        }
        value
    }

    /// Drops every entry (hit/miss counters keep running). Used by the
    /// cold-path benchmark.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.map.clear();
        inner.order.clear();
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hits.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime misses.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_hits_and_misses() {
        let cache: ScoreCache<u32> = ScoreCache::new(4);
        assert!(cache.get("a").is_none());
        cache.insert("a".into(), 1);
        assert_eq!(*cache.get("a").unwrap(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn evicts_oldest_first() {
        let cache: ScoreCache<u32> = ScoreCache::new(2);
        cache.insert("a".into(), 1);
        cache.insert("b".into(), 2);
        cache.insert("c".into(), 3);
        assert!(cache.get("a").is_none(), "oldest entry evicted");
        assert!(cache.get("b").is_some());
        assert!(cache.get("c").is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinserting_same_key_does_not_grow_order() {
        let cache: ScoreCache<u32> = ScoreCache::new(2);
        for _ in 0..10 {
            cache.insert("a".into(), 1);
        }
        cache.insert("b".into(), 2);
        assert_eq!(cache.len(), 2);
        assert!(cache.get("a").is_some());
        assert!(cache.get("b").is_some());
    }

    #[test]
    fn reinserting_refreshes_the_fifo_slot() {
        // Regression: a re-inserted key used to keep its original FIFO
        // position, so a just-refreshed entry could be evicted as if it
        // were the oldest.
        let cache: ScoreCache<u32> = ScoreCache::new(2);
        cache.insert("a".into(), 1);
        cache.insert("b".into(), 2);
        cache.insert("a".into(), 10); // refresh: "b" is now the oldest
        cache.insert("c".into(), 3); // evicts "b", not "a"
        assert_eq!(cache.get("a").as_deref(), Some(&10), "refreshed entry survives");
        assert!(cache.get("b").is_none(), "oldest-by-refresh is the one evicted");
        assert!(cache.get("c").is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let cache: ScoreCache<u32> = ScoreCache::new(4);
        cache.insert("a".into(), 1);
        cache.get("a");
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache.get("a").is_none());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }
}
