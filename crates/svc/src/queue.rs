//! Bounded MPMC submission queue with shed-on-full admission control.
//!
//! Built on `std::sync` (`Mutex` + `Condvar`) rather than channel crates
//! so the offline build harness — whose `crossbeam` stub has no channels
//! — exercises the exact production code. Producers never block:
//! [`BoundedQueue::try_push`] returns the item back when the queue is at
//! capacity (the caller sheds load with an `Overloaded` response).
//! Consumers block in [`BoundedQueue::pop`] until an item arrives or the
//! queue is closed *and* drained — which is precisely the graceful
//! shutdown semantic: close, then let workers finish what was admitted.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a `try_push` was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back.
    Full(T),
    /// The queue no longer accepts work (shutting down).
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer / multi-consumer FIFO.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    notify: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false }),
            notify: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admission capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth (racy by nature; used for gauges and hints).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking admission: enqueues or returns the item back.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.notify.notify_one();
        Ok(())
    }

    /// Blocks until an item is available (`Some`) or the queue is closed
    /// and fully drained (`None`).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.notify.wait(inner).expect("queue lock");
        }
    }

    /// Stops admissions. Already-queued items remain poppable; blocked
    /// consumers wake and drain, then observe `None`.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.notify.notify_all();
    }

    /// True once [`close`](Self::close) was called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("queue lock").closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sheds_when_full_and_closed() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        q.close();
        assert_eq!(q.try_push(4), Err(PushError::Closed(4)));
    }

    #[test]
    fn close_drains_queued_items_then_releases_consumers() {
        let q = Arc::new(BoundedQueue::new(8));
        q.try_push(10).unwrap();
        q.try_push(11).unwrap();
        q.close();
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn wakes_blocked_consumer_on_push() {
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(7usize).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(7));
    }

    #[test]
    fn wakes_blocked_consumer_on_close() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn many_producers_many_consumers_deliver_everything_once() {
        let q = Arc::new(BoundedQueue::new(1024));
        let mut producers = Vec::new();
        for p in 0..4u64 {
            let q = Arc::clone(&q);
            producers.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    loop {
                        if q.try_push(p * 1000 + i).is_ok() {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let q = Arc::clone(&q);
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.sort_unstable();
        let expect: Vec<u64> =
            (0..4u64).flat_map(|p| (0..100u64).map(move |i| p * 1000 + i)).collect();
        assert_eq!(all, expect);
    }
}
