//! Blocking JSON-lines TCP client (used by `ensemble query`, the
//! integration tests, and the throughput benchmark).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{Request, Response};

/// How [`SvcClient::submit`] reacts to `overloaded` responses: retry up
/// to `max_attempts` total sends, honouring the server's
/// `retry_after_ms` hint, doubled per retry and capped at
/// `max_backoff`.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total send attempts (1 = no retry).
    pub max_attempts: u32,
    /// Ceiling on one backoff sleep, however large the server's hint or
    /// the exponential growth.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 4, max_backoff: Duration::from_secs(2) }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `retry` (1-based) given the
    /// server's `retry_after_ms` hint: hint × 2^(retry−1), capped.
    fn backoff(&self, retry: u32, retry_after_ms: u64) -> Duration {
        let doubled = retry_after_ms.saturating_mul(1u64 << (retry - 1).min(16));
        Duration::from_millis(doubled).min(self.max_backoff)
    }
}

/// A connected client. One request at a time per client; open more
/// clients for concurrency (the server pools them onto shared workers).
pub struct SvcClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl SvcClient {
    /// Connects to a running service.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<SvcClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(SvcClient { stream, reader })
    }

    /// Bounds how long [`request`](Self::request) waits for a response.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends one request and blocks for its response line.
    pub fn request(&mut self, request: &Request) -> std::io::Result<Response> {
        let mut line = request.to_json();
        line.push('\n');
        self.stream.write_all(line.as_bytes())?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Response::from_json(reply.trim_end()).map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad response line: {e}"))
        })
    }

    /// Sends one request, retrying on `overloaded` per `policy`. Any
    /// other response (including errors) returns immediately; when the
    /// attempt budget runs out the last `overloaded` response is
    /// returned so the caller still sees the server's hint.
    pub fn submit(&mut self, request: &Request, policy: &RetryPolicy) -> std::io::Result<Response> {
        let attempts = policy.max_attempts.max(1);
        let mut retry = 0u32;
        loop {
            let response = self.request(request)?;
            let Response::Overloaded { retry_after_ms, .. } = response else {
                return Ok(response);
            };
            retry += 1;
            if retry >= attempts {
                return Ok(response);
            }
            std::thread::sleep(policy.backoff(retry, retry_after_ms));
        }
    }

    /// Re-fetches a completed `run` by its job id (the request id the
    /// original `run` carried) — works across service restarts when the
    /// server journals.
    pub fn attach(&mut self, id: u64, job: u64) -> std::io::Result<Response> {
        self.request(&Request {
            id,
            deadline: None,
            body: crate::protocol::RequestBody::Attach { job },
        })
    }

    /// Sends a raw line (malformed-input testing) and reads one response
    /// line back.
    pub fn request_raw(&mut self, raw_line: &str) -> std::io::Result<Response> {
        self.stream.write_all(raw_line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Response::from_json(reply.trim_end()).map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad response line: {e}"))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::RequestBody;
    use std::net::TcpListener;

    /// A scripted one-connection server: answers the i-th request line
    /// with the i-th canned response, then keeps the socket open.
    fn scripted_server(
        responses: Vec<Response>,
    ) -> (std::net::SocketAddr, std::thread::JoinHandle<usize>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
        let addr = listener.local_addr().expect("local addr");
        let handle = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut stream = stream;
            let mut served = 0usize;
            for response in responses {
                let mut line = String::new();
                if reader.read_line(&mut line).expect("read request") == 0 {
                    break;
                }
                let mut out = response.to_json();
                out.push('\n');
                stream.write_all(out.as_bytes()).expect("write response");
                served += 1;
            }
            served
        });
        (addr, handle)
    }

    fn metrics_request(id: u64) -> Request {
        Request { id, deadline: None, body: RequestBody::Metrics }
    }

    #[test]
    fn submit_retries_past_overloaded_responses() {
        let (addr, server) = scripted_server(vec![
            Response::Overloaded { id: 7, retry_after_ms: 1 },
            Response::Overloaded { id: 7, retry_after_ms: 1 },
            Response::Metrics { id: 7, rows: vec![] },
        ]);
        let mut client = SvcClient::connect(addr).expect("connect");
        let policy = RetryPolicy { max_attempts: 4, max_backoff: Duration::from_millis(20) };
        let response = client.submit(&metrics_request(7), &policy).expect("submit");
        assert!(matches!(response, Response::Metrics { id: 7, .. }), "got {response:?}");
        assert_eq!(server.join().expect("server"), 3, "two retries after the initial send");
    }

    #[test]
    fn submit_returns_the_last_overloaded_when_attempts_run_out() {
        let (addr, server) = scripted_server(vec![
            Response::Overloaded { id: 3, retry_after_ms: 1 },
            Response::Overloaded { id: 3, retry_after_ms: 5 },
        ]);
        let mut client = SvcClient::connect(addr).expect("connect");
        let policy = RetryPolicy { max_attempts: 2, max_backoff: Duration::from_millis(20) };
        let response = client.submit(&metrics_request(3), &policy).expect("submit");
        assert!(
            matches!(response, Response::Overloaded { id: 3, retry_after_ms: 5 }),
            "the caller sees the server's final hint, got {response:?}"
        );
        assert_eq!(server.join().expect("server"), 2);
    }

    #[test]
    fn submit_with_one_attempt_never_retries() {
        let (addr, server) =
            scripted_server(vec![Response::Overloaded { id: 1, retry_after_ms: 1 }]);
        let mut client = SvcClient::connect(addr).expect("connect");
        let policy = RetryPolicy { max_attempts: 1, max_backoff: Duration::from_millis(20) };
        let response = client.submit(&metrics_request(1), &policy).expect("submit");
        assert!(matches!(response, Response::Overloaded { .. }));
        assert_eq!(server.join().expect("server"), 1);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy { max_attempts: 8, max_backoff: Duration::from_millis(100) };
        assert_eq!(policy.backoff(1, 10), Duration::from_millis(10));
        assert_eq!(policy.backoff(2, 10), Duration::from_millis(20));
        assert_eq!(policy.backoff(3, 10), Duration::from_millis(40));
        assert_eq!(policy.backoff(5, 10), Duration::from_millis(100), "capped");
        assert_eq!(policy.backoff(1, 500), Duration::from_millis(100), "hint itself is capped");
    }
}
