//! Blocking JSON-lines TCP client (used by `ensemble query`, the
//! integration tests, and the throughput benchmark).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{Frame, Progress, Request, Response};

/// How [`SvcClient::submit`] reacts to `overloaded` responses: retry up
/// to `max_attempts` total sends, honouring the server's
/// `retry_after_ms` hint, doubled per retry and capped at
/// `max_backoff`.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total send attempts (1 = no retry).
    pub max_attempts: u32,
    /// Ceiling on one backoff sleep, however large the server's hint or
    /// the exponential growth.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 4, max_backoff: Duration::from_secs(2) }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `retry` (1-based) given the
    /// server's `retry_after_ms` hint: hint × 2^(retry−1), capped.
    fn backoff(&self, retry: u32, retry_after_ms: u64) -> Duration {
        let doubled = retry_after_ms.saturating_mul(1u64 << (retry - 1).min(16));
        Duration::from_millis(doubled).min(self.max_backoff)
    }
}

/// A connected client. One request at a time per client; open more
/// clients for concurrency (the server pools them onto shared workers).
///
/// After any I/O failure mid-request — a read timeout most commonly —
/// the client is *poisoned*: the stream may hold a partial or stale
/// reply line (`BufReader::read_line` consumes bytes it cannot give
/// back), so reusing it would hand request N+1 the response to request
/// N. Every later call fails fast with a "reconnect" error instead of
/// silently desyncing; open a fresh [`SvcClient::connect`] to recover.
pub struct SvcClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    poisoned: bool,
}

impl SvcClient {
    /// Connects to a running service.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<SvcClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(SvcClient { stream, reader, poisoned: false })
    }

    /// Bounds how long [`request`](Self::request) waits for a response.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Whether a previous I/O failure left the connection unusable (see
    /// the type docs). A poisoned client never un-poisons; reconnect.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    fn check_poisoned(&self) -> std::io::Result<()> {
        if self.poisoned {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "client poisoned by an earlier I/O failure (stream may hold a stale reply); \
                 reconnect with SvcClient::connect",
            ));
        }
        Ok(())
    }

    /// Records that the stream is no longer at a frame boundary.
    fn poison(&mut self, e: std::io::Error) -> std::io::Error {
        self.poisoned = true;
        e
    }

    /// Reads one protocol frame line. Any failure poisons the client.
    fn read_frame(&mut self) -> std::io::Result<Frame> {
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply).map_err(|e| self.poison(e))?;
        if n == 0 {
            return Err(self.poison(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Frame::from_json(reply.trim_end()).map_err(|e| {
            self.poison(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad response line: {e}"),
            ))
        })
    }

    /// Sends one request and blocks for its final response, discarding
    /// any progress frames (sent only if `request.progress` opted in).
    pub fn request(&mut self, request: &Request) -> std::io::Result<Response> {
        self.request_streaming(request, |_| {})
    }

    /// Sends one request and blocks for its final response, handing each
    /// interim progress frame to `on_progress` as it arrives. A final
    /// whose id does not match the request is dropped as stale (it can
    /// only be a leftover from a poisoned predecessor on a server-side
    /// connection replay; matching ids is cheap insurance either way).
    pub fn request_streaming(
        &mut self,
        request: &Request,
        mut on_progress: impl FnMut(&Progress),
    ) -> std::io::Result<Response> {
        self.check_poisoned()?;
        let mut line = request.to_json();
        line.push('\n');
        self.stream.write_all(line.as_bytes()).map_err(|e| self.poison(e))?;
        loop {
            match self.read_frame()? {
                Frame::Progress(p) => {
                    if p.id == request.id {
                        on_progress(&p);
                    }
                }
                Frame::Final(response) => {
                    // Malformed-request errors may echo id 0 when the
                    // server could not parse ours; accept those too.
                    if response.id() == request.id || response.id() == 0 {
                        return Ok(response);
                    }
                }
            }
        }
    }

    /// Sends one request, retrying on `overloaded` per `policy`. Any
    /// other response (including errors) returns immediately; when the
    /// attempt budget runs out the last `overloaded` response is
    /// returned so the caller still sees the server's hint.
    pub fn submit(&mut self, request: &Request, policy: &RetryPolicy) -> std::io::Result<Response> {
        let attempts = policy.max_attempts.max(1);
        let mut retry = 0u32;
        loop {
            let response = self.request(request)?;
            let Response::Overloaded { retry_after_ms, .. } = response else {
                return Ok(response);
            };
            retry += 1;
            if retry >= attempts {
                return Ok(response);
            }
            std::thread::sleep(policy.backoff(retry, retry_after_ms));
        }
    }

    /// Re-fetches a completed `run` by its job id (the request id the
    /// original `run` carried) — works across service restarts when the
    /// server journals.
    pub fn attach(&mut self, id: u64, job: u64) -> std::io::Result<Response> {
        self.request(&Request {
            id,
            deadline: None,
            progress: None,
            tenant: None,
            body: crate::protocol::RequestBody::Attach { job },
        })
    }

    /// Sends a raw line (malformed-input testing) and reads one response
    /// line back.
    pub fn request_raw(&mut self, raw_line: &str) -> std::io::Result<Response> {
        self.check_poisoned()?;
        self.stream.write_all(raw_line.as_bytes()).map_err(|e| self.poison(e))?;
        self.stream.write_all(b"\n").map_err(|e| self.poison(e))?;
        match self.read_frame()? {
            Frame::Final(response) => Ok(response),
            Frame::Progress(_) => Err(self.poison(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "unexpected progress frame for a raw request",
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::RequestBody;
    use std::net::TcpListener;

    /// A scripted one-connection server: answers the i-th request line
    /// with the i-th canned response, then keeps the socket open.
    fn scripted_server(
        responses: Vec<Response>,
    ) -> (std::net::SocketAddr, std::thread::JoinHandle<usize>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
        let addr = listener.local_addr().expect("local addr");
        let handle = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut stream = stream;
            let mut served = 0usize;
            for response in responses {
                let mut line = String::new();
                if reader.read_line(&mut line).expect("read request") == 0 {
                    break;
                }
                let mut out = response.to_json();
                out.push('\n');
                stream.write_all(out.as_bytes()).expect("write response");
                served += 1;
            }
            served
        });
        (addr, handle)
    }

    fn metrics_request(id: u64) -> Request {
        Request { id, deadline: None, progress: None, tenant: None, body: RequestBody::Metrics }
    }

    #[test]
    fn submit_retries_past_overloaded_responses() {
        let (addr, server) = scripted_server(vec![
            Response::Overloaded { id: 7, retry_after_ms: 1 },
            Response::Overloaded { id: 7, retry_after_ms: 1 },
            Response::Metrics { id: 7, rows: vec![] },
        ]);
        let mut client = SvcClient::connect(addr).expect("connect");
        let policy = RetryPolicy { max_attempts: 4, max_backoff: Duration::from_millis(20) };
        let response = client.submit(&metrics_request(7), &policy).expect("submit");
        assert!(matches!(response, Response::Metrics { id: 7, .. }), "got {response:?}");
        assert_eq!(server.join().expect("server"), 3, "two retries after the initial send");
    }

    #[test]
    fn submit_returns_the_last_overloaded_when_attempts_run_out() {
        let (addr, server) = scripted_server(vec![
            Response::Overloaded { id: 3, retry_after_ms: 1 },
            Response::Overloaded { id: 3, retry_after_ms: 5 },
        ]);
        let mut client = SvcClient::connect(addr).expect("connect");
        let policy = RetryPolicy { max_attempts: 2, max_backoff: Duration::from_millis(20) };
        let response = client.submit(&metrics_request(3), &policy).expect("submit");
        assert!(
            matches!(response, Response::Overloaded { id: 3, retry_after_ms: 5 }),
            "the caller sees the server's final hint, got {response:?}"
        );
        assert_eq!(server.join().expect("server"), 2);
    }

    #[test]
    fn submit_with_one_attempt_never_retries() {
        let (addr, server) =
            scripted_server(vec![Response::Overloaded { id: 1, retry_after_ms: 1 }]);
        let mut client = SvcClient::connect(addr).expect("connect");
        let policy = RetryPolicy { max_attempts: 1, max_backoff: Duration::from_millis(20) };
        let response = client.submit(&metrics_request(1), &policy).expect("submit");
        assert!(matches!(response, Response::Overloaded { .. }));
        assert_eq!(server.join().expect("server"), 1);
    }

    #[test]
    fn timeout_poisons_the_client_instead_of_desyncing() {
        // A server that answers the first request only after the
        // client's read timeout has fired, then answers the second
        // request promptly. Pre-fix, the client left request 1's reply
        // in the pipe and handed it to request 2 — every later exchange
        // was off by one.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
        let addr = listener.local_addr().expect("local addr");
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut stream = stream;
            let mut line = String::new();
            reader.read_line(&mut line).expect("read request 1");
            std::thread::sleep(Duration::from_millis(200));
            let late = Response::Metrics { id: 1, rows: vec![] };
            let _ = stream.write_all(format!("{}\n", late.to_json()).as_bytes());
            // Keep the socket open long enough for a buggy client to
            // read the late line as request 2's answer.
            std::thread::sleep(Duration::from_millis(200));
        });
        let mut client = SvcClient::connect(addr).expect("connect");
        client.set_timeout(Some(Duration::from_millis(40))).expect("set timeout");
        let err = client.request(&metrics_request(1)).expect_err("request 1 must time out");
        assert!(
            matches!(err.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut),
            "expected a timeout, got {err:?}"
        );
        assert!(client.is_poisoned(), "a timed-out read must poison the client");
        let err2 = client
            .request(&metrics_request(2))
            .expect_err("a poisoned client must refuse request 2, not serve it a stale reply");
        assert_eq!(err2.kind(), std::io::ErrorKind::BrokenPipe);
        assert!(err2.to_string().contains("reconnect"), "got {err2}");
        server.join().expect("server");
        // Reconnecting (the documented recovery) gives a clean client.
        // The server above is gone, so just assert the flag is sticky.
        assert!(client.is_poisoned());
    }

    #[test]
    fn finals_with_mismatched_ids_are_dropped_as_stale() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
        let addr = listener.local_addr().expect("local addr");
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut stream = stream;
            let mut line = String::new();
            reader.read_line(&mut line).expect("read request");
            let stale = Response::Metrics { id: 41, rows: vec![] };
            let fresh = Response::Metrics { id: 42, rows: vec![] };
            stream
                .write_all(format!("{}\n{}\n", stale.to_json(), fresh.to_json()).as_bytes())
                .expect("write responses");
        });
        let mut client = SvcClient::connect(addr).expect("connect");
        let response = client.request(&metrics_request(42)).expect("request");
        assert_eq!(response.id(), 42, "the stale id-41 line must be skipped, got {response:?}");
        server.join().expect("server");
    }

    #[test]
    fn request_streaming_hands_progress_frames_to_the_callback() {
        use crate::protocol::{Progress, ProgressBody};
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
        let addr = listener.local_addr().expect("local addr");
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut stream = stream;
            let mut line = String::new();
            reader.read_line(&mut line).expect("read request");
            let p1 = Progress {
                id: 9,
                body: ProgressBody::Score {
                    candidates_scanned: 64,
                    best_objective: Some(0.5),
                    workers: 2,
                },
            };
            let p2 = Progress {
                id: 9,
                body: ProgressBody::Score {
                    candidates_scanned: 128,
                    best_objective: Some(0.75),
                    workers: 2,
                },
            };
            let done = Response::Metrics { id: 9, rows: vec![] };
            stream
                .write_all(
                    format!("{}\n{}\n{}\n", p1.to_json(), p2.to_json(), done.to_json()).as_bytes(),
                )
                .expect("write frames");
        });
        let mut client = SvcClient::connect(addr).expect("connect");
        let mut scanned = Vec::new();
        let response = client
            .request_streaming(&metrics_request(9), |p| {
                if let ProgressBody::Score { candidates_scanned, .. } = &p.body {
                    scanned.push(*candidates_scanned);
                }
            })
            .expect("request");
        assert_eq!(response.id(), 9);
        assert_eq!(scanned, vec![64, 128], "both progress frames observed, in order");
        assert!(!client.is_poisoned());
        server.join().expect("server");
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy { max_attempts: 8, max_backoff: Duration::from_millis(100) };
        assert_eq!(policy.backoff(1, 10), Duration::from_millis(10));
        assert_eq!(policy.backoff(2, 10), Duration::from_millis(20));
        assert_eq!(policy.backoff(3, 10), Duration::from_millis(40));
        assert_eq!(policy.backoff(5, 10), Duration::from_millis(100), "capped");
        assert_eq!(policy.backoff(1, 500), Duration::from_millis(100), "hint itself is capped");
    }
}
