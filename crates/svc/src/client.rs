//! Blocking JSON-lines TCP client (used by `ensemble query`, the
//! integration tests, and the throughput benchmark).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{Request, Response};

/// A connected client. One request at a time per client; open more
/// clients for concurrency (the server pools them onto shared workers).
pub struct SvcClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl SvcClient {
    /// Connects to a running service.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<SvcClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(SvcClient { stream, reader })
    }

    /// Bounds how long [`request`](Self::request) waits for a response.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends one request and blocks for its response line.
    pub fn request(&mut self, request: &Request) -> std::io::Result<Response> {
        let mut line = request.to_json();
        line.push('\n');
        self.stream.write_all(line.as_bytes())?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Response::from_json(reply.trim_end()).map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad response line: {e}"))
        })
    }

    /// Re-fetches a completed `run` by its job id (the request id the
    /// original `run` carried) — works across service restarts when the
    /// server journals.
    pub fn attach(&mut self, id: u64, job: u64) -> std::io::Result<Response> {
        self.request(&Request {
            id,
            deadline: None,
            body: crate::protocol::RequestBody::Attach { job },
        })
    }

    /// Sends a raw line (malformed-input testing) and reads one response
    /// line back.
    pub fn request_raw(&mut self, raw_line: &str) -> std::io::Result<Response> {
        self.stream.write_all(raw_line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Response::from_json(reply.trim_end()).map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad response line: {e}"))
        })
    }
}
