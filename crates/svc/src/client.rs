//! Blocking JSON-lines TCP client (used by `ensemble query`, the
//! integration tests, and the throughput benchmark).
//!
//! [`SvcClient`] speaks to one address; [`FailoverClient`] wraps a
//! list of addresses (primary plus standbys) and hunts for whichever
//! one currently accepts work.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{ErrorKind, Frame, Progress, Request, Response};

/// How [`SvcClient::submit`] reacts to `overloaded` responses: retry up
/// to `max_attempts` total sends, honouring the server's
/// `retry_after_ms` hint, doubled per retry and capped at
/// `max_backoff`.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total send attempts (1 = no retry).
    pub max_attempts: u32,
    /// Ceiling on one backoff sleep, however large the server's hint or
    /// the exponential growth.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 4, max_backoff: Duration::from_secs(2) }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `retry` (1-based) given the
    /// server's `retry_after_ms` hint: hint × 2^(retry−1), capped.
    fn backoff(&self, retry: u32, retry_after_ms: u64) -> Duration {
        let doubled = retry_after_ms.saturating_mul(1u64 << (retry - 1).min(16));
        Duration::from_millis(doubled).min(self.max_backoff)
    }
}

/// A connected client. One request at a time per client; open more
/// clients for concurrency (the server pools them onto shared workers).
///
/// After any I/O failure mid-request — a read timeout most commonly —
/// the client is *poisoned*: the stream may hold a partial or stale
/// reply line (`BufReader::read_line` consumes bytes it cannot give
/// back), so reusing it would hand request N+1 the response to request
/// N. Every later call fails fast with a "reconnect" error instead of
/// silently desyncing; open a fresh [`SvcClient::connect`] to recover.
pub struct SvcClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    poisoned: bool,
}

impl SvcClient {
    /// Connects to a running service.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<SvcClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(SvcClient { stream, reader, poisoned: false })
    }

    /// Bounds how long [`request`](Self::request) waits for a response.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Whether a previous I/O failure left the connection unusable (see
    /// the type docs). A poisoned client never un-poisons; reconnect.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    fn check_poisoned(&self) -> std::io::Result<()> {
        if self.poisoned {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "client poisoned by an earlier I/O failure (stream may hold a stale reply); \
                 reconnect with SvcClient::connect",
            ));
        }
        Ok(())
    }

    /// Records that the stream is no longer at a frame boundary.
    fn poison(&mut self, e: std::io::Error) -> std::io::Error {
        self.poisoned = true;
        e
    }

    /// Reads one protocol frame line. Any failure poisons the client.
    fn read_frame(&mut self) -> std::io::Result<Frame> {
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply).map_err(|e| self.poison(e))?;
        if n == 0 {
            return Err(self.poison(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Frame::from_json(reply.trim_end()).map_err(|e| {
            self.poison(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad response line: {e}"),
            ))
        })
    }

    /// Sends one request and blocks for its final response, discarding
    /// any progress frames (sent only if `request.progress` opted in).
    pub fn request(&mut self, request: &Request) -> std::io::Result<Response> {
        self.request_streaming(request, |_| {})
    }

    /// Sends one request and blocks for its final response, handing each
    /// interim progress frame to `on_progress` as it arrives. A final
    /// whose id does not match the request is dropped as stale (it can
    /// only be a leftover from a poisoned predecessor on a server-side
    /// connection replay; matching ids is cheap insurance either way).
    pub fn request_streaming(
        &mut self,
        request: &Request,
        mut on_progress: impl FnMut(&Progress),
    ) -> std::io::Result<Response> {
        self.check_poisoned()?;
        let mut line = request.to_json();
        line.push('\n');
        self.stream.write_all(line.as_bytes()).map_err(|e| self.poison(e))?;
        loop {
            match self.read_frame()? {
                Frame::Progress(p) => {
                    if p.id == request.id {
                        on_progress(&p);
                    }
                }
                Frame::Final(response) => {
                    // Malformed-request errors may echo id 0 when the
                    // server could not parse ours; accept those too.
                    if response.id() == request.id || response.id() == 0 {
                        return Ok(response);
                    }
                }
            }
        }
    }

    /// Sends one request, retrying on `overloaded` per `policy`. Any
    /// other response (including errors) returns immediately; when the
    /// attempt budget runs out the last `overloaded` response is
    /// returned so the caller still sees the server's hint.
    pub fn submit(&mut self, request: &Request, policy: &RetryPolicy) -> std::io::Result<Response> {
        let attempts = policy.max_attempts.max(1);
        let mut retry = 0u32;
        loop {
            let response = self.request(request)?;
            let Response::Overloaded { retry_after_ms, .. } = response else {
                return Ok(response);
            };
            retry += 1;
            if retry >= attempts {
                return Ok(response);
            }
            std::thread::sleep(policy.backoff(retry, retry_after_ms));
        }
    }

    /// Re-fetches a completed `run` by its job id (the request id the
    /// original `run` carried) — works across service restarts when the
    /// server journals.
    pub fn attach(&mut self, id: u64, job: u64) -> std::io::Result<Response> {
        self.request(&Request {
            id,
            deadline: None,
            progress: None,
            tenant: None,
            body: crate::protocol::RequestBody::Attach { job },
        })
    }

    /// Sends a raw line (malformed-input testing) and reads one response
    /// line back.
    pub fn request_raw(&mut self, raw_line: &str) -> std::io::Result<Response> {
        self.check_poisoned()?;
        self.stream.write_all(raw_line.as_bytes()).map_err(|e| self.poison(e))?;
        self.stream.write_all(b"\n").map_err(|e| self.poison(e))?;
        match self.read_frame()? {
            Frame::Final(response) => Ok(response),
            Frame::Progress(_) => Err(self.poison(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "unexpected progress frame for a raw request",
            ))),
        }
    }
}

/// How a [`FailoverClient`] hunts for a live server across its
/// address list.
#[derive(Debug, Clone, Copy)]
pub struct FailoverPolicy {
    /// Rounds through the whole address list before giving up (1 = try
    /// each address once).
    pub max_rounds: u32,
    /// Sleep between rounds, doubled per round.
    pub initial_backoff: Duration,
    /// Cap on the between-rounds backoff.
    pub max_backoff: Duration,
}

impl Default for FailoverPolicy {
    fn default() -> Self {
        FailoverPolicy {
            max_rounds: 5,
            initial_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(1),
        }
    }
}

/// A client over an ordered list of addresses (primary first, then
/// standbys). Each request is tried against the current connection;
/// on a transport failure the poisoned [`SvcClient`] is discarded and
/// the next address is tried, with capped exponential backoff between
/// full rounds. A [`standby`](ErrorKind::Standby) refusal also rotates
/// to the next address — that is how a client parked on a not-yet-
/// promoted standby finds the primary.
///
/// Failover gives **at-least-once** semantics: a request that died
/// mid-flight may still have executed on the old primary before the
/// retry executed it again. Idempotent reads (`metrics`, `attach`,
/// cached `score`) are safe; for `run`/`submit`, re-`attach` by job id
/// after a failover to dedupe instead of resubmitting blindly.
pub struct FailoverClient {
    addrs: Vec<String>,
    policy: FailoverPolicy,
    current: usize,
    client: Option<SvcClient>,
    timeout: Option<Duration>,
}

impl FailoverClient {
    /// Builds a client over `addrs` (tried in order). Connections are
    /// opened lazily on first use, so construction cannot fail — a
    /// fully dead fleet surfaces on the first request instead.
    pub fn new(addrs: Vec<String>, policy: FailoverPolicy) -> FailoverClient {
        assert!(!addrs.is_empty(), "failover client needs at least one address");
        FailoverClient { addrs, policy, current: 0, client: None, timeout: None }
    }

    /// Bounds how long one request waits for a response (applied to
    /// every connection this client opens).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) {
        self.timeout = timeout;
        if let Some(client) = &self.client {
            let _ = client.set_timeout(timeout);
        }
    }

    /// The address the live connection points at (the one the next
    /// request will try first).
    pub fn current_addr(&self) -> &str {
        &self.addrs[self.current]
    }

    /// Sends one request, failing over per the policy; discards
    /// progress frames.
    pub fn request(&mut self, request: &Request) -> std::io::Result<Response> {
        self.request_streaming(request, |_| {})
    }

    /// Re-fetches a completed run by job id, failing over as needed —
    /// the safe way to recover a result after a primary died
    /// mid-request.
    pub fn attach(&mut self, id: u64, job: u64) -> std::io::Result<Response> {
        self.request(&Request {
            id,
            deadline: None,
            progress: None,
            tenant: None,
            body: crate::protocol::RequestBody::Attach { job },
        })
    }

    /// Sends one request, failing over per the policy, handing interim
    /// progress frames to `on_progress`.
    pub fn request_streaming(
        &mut self,
        request: &Request,
        mut on_progress: impl FnMut(&Progress),
    ) -> std::io::Result<Response> {
        let mut backoff = self.policy.initial_backoff;
        let mut last_err: Option<std::io::Error> = None;
        let mut last_standby: Option<Response> = None;
        for round in 0..self.policy.max_rounds.max(1) {
            if round > 0 {
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2).min(self.policy.max_backoff);
            }
            for _ in 0..self.addrs.len() {
                match self.try_current(request, &mut on_progress) {
                    Ok(refusal @ Response::Error { kind: ErrorKind::Standby, .. }) => {
                        // A healthy-but-read-only standby answered:
                        // remember the refusal, look for the primary at
                        // the next address (later rounds re-ask — a
                        // standby may have promoted meanwhile).
                        last_standby = Some(refusal);
                        self.client = None;
                        self.current = (self.current + 1) % self.addrs.len();
                    }
                    Ok(response) => return Ok(response),
                    Err(e) => {
                        last_err = Some(e);
                        self.client = None;
                        self.current = (self.current + 1) % self.addrs.len();
                    }
                }
            }
        }
        // Every address refused as standby (no primary promoted yet):
        // that is an answer, not a transport failure.
        if let Some(standby) = last_standby {
            return Ok(standby);
        }
        Err(last_err.unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::NotConnected, "failover: no address answered")
        }))
    }

    fn try_current(
        &mut self,
        request: &Request,
        on_progress: &mut impl FnMut(&Progress),
    ) -> std::io::Result<Response> {
        if self.client.is_none() {
            let client = SvcClient::connect(self.addrs[self.current].as_str())?;
            client.set_timeout(self.timeout)?;
            self.client = Some(client);
        }
        let client = self.client.as_mut().expect("just connected");
        let result = client.request_streaming(request, |p| on_progress(p));
        if result.is_err() {
            // Poisoned (or dead) — never reuse it.
            self.client = None;
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::RequestBody;
    use std::net::TcpListener;

    /// A scripted one-connection server: answers the i-th request line
    /// with the i-th canned response, then keeps the socket open.
    fn scripted_server(
        responses: Vec<Response>,
    ) -> (std::net::SocketAddr, std::thread::JoinHandle<usize>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
        let addr = listener.local_addr().expect("local addr");
        let handle = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut stream = stream;
            let mut served = 0usize;
            for response in responses {
                let mut line = String::new();
                if reader.read_line(&mut line).expect("read request") == 0 {
                    break;
                }
                let mut out = response.to_json();
                out.push('\n');
                stream.write_all(out.as_bytes()).expect("write response");
                served += 1;
            }
            served
        });
        (addr, handle)
    }

    fn metrics_request(id: u64) -> Request {
        Request { id, deadline: None, progress: None, tenant: None, body: RequestBody::Metrics }
    }

    #[test]
    fn submit_retries_past_overloaded_responses() {
        let (addr, server) = scripted_server(vec![
            Response::Overloaded { id: 7, retry_after_ms: 1 },
            Response::Overloaded { id: 7, retry_after_ms: 1 },
            Response::Metrics { id: 7, rows: vec![] },
        ]);
        let mut client = SvcClient::connect(addr).expect("connect");
        let policy = RetryPolicy { max_attempts: 4, max_backoff: Duration::from_millis(20) };
        let response = client.submit(&metrics_request(7), &policy).expect("submit");
        assert!(matches!(response, Response::Metrics { id: 7, .. }), "got {response:?}");
        assert_eq!(server.join().expect("server"), 3, "two retries after the initial send");
    }

    #[test]
    fn submit_returns_the_last_overloaded_when_attempts_run_out() {
        let (addr, server) = scripted_server(vec![
            Response::Overloaded { id: 3, retry_after_ms: 1 },
            Response::Overloaded { id: 3, retry_after_ms: 5 },
        ]);
        let mut client = SvcClient::connect(addr).expect("connect");
        let policy = RetryPolicy { max_attempts: 2, max_backoff: Duration::from_millis(20) };
        let response = client.submit(&metrics_request(3), &policy).expect("submit");
        assert!(
            matches!(response, Response::Overloaded { id: 3, retry_after_ms: 5 }),
            "the caller sees the server's final hint, got {response:?}"
        );
        assert_eq!(server.join().expect("server"), 2);
    }

    #[test]
    fn submit_with_one_attempt_never_retries() {
        let (addr, server) =
            scripted_server(vec![Response::Overloaded { id: 1, retry_after_ms: 1 }]);
        let mut client = SvcClient::connect(addr).expect("connect");
        let policy = RetryPolicy { max_attempts: 1, max_backoff: Duration::from_millis(20) };
        let response = client.submit(&metrics_request(1), &policy).expect("submit");
        assert!(matches!(response, Response::Overloaded { .. }));
        assert_eq!(server.join().expect("server"), 1);
    }

    #[test]
    fn timeout_poisons_the_client_instead_of_desyncing() {
        // A server that answers the first request only after the
        // client's read timeout has fired, then answers the second
        // request promptly. Pre-fix, the client left request 1's reply
        // in the pipe and handed it to request 2 — every later exchange
        // was off by one.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
        let addr = listener.local_addr().expect("local addr");
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut stream = stream;
            let mut line = String::new();
            reader.read_line(&mut line).expect("read request 1");
            std::thread::sleep(Duration::from_millis(200));
            let late = Response::Metrics { id: 1, rows: vec![] };
            let _ = stream.write_all(format!("{}\n", late.to_json()).as_bytes());
            // Keep the socket open long enough for a buggy client to
            // read the late line as request 2's answer.
            std::thread::sleep(Duration::from_millis(200));
        });
        let mut client = SvcClient::connect(addr).expect("connect");
        client.set_timeout(Some(Duration::from_millis(40))).expect("set timeout");
        let err = client.request(&metrics_request(1)).expect_err("request 1 must time out");
        assert!(
            matches!(err.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut),
            "expected a timeout, got {err:?}"
        );
        assert!(client.is_poisoned(), "a timed-out read must poison the client");
        let err2 = client
            .request(&metrics_request(2))
            .expect_err("a poisoned client must refuse request 2, not serve it a stale reply");
        assert_eq!(err2.kind(), std::io::ErrorKind::BrokenPipe);
        assert!(err2.to_string().contains("reconnect"), "got {err2}");
        server.join().expect("server");
        // Reconnecting (the documented recovery) gives a clean client.
        // The server above is gone, so just assert the flag is sticky.
        assert!(client.is_poisoned());
    }

    #[test]
    fn finals_with_mismatched_ids_are_dropped_as_stale() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
        let addr = listener.local_addr().expect("local addr");
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut stream = stream;
            let mut line = String::new();
            reader.read_line(&mut line).expect("read request");
            let stale = Response::Metrics { id: 41, rows: vec![] };
            let fresh = Response::Metrics { id: 42, rows: vec![] };
            stream
                .write_all(format!("{}\n{}\n", stale.to_json(), fresh.to_json()).as_bytes())
                .expect("write responses");
        });
        let mut client = SvcClient::connect(addr).expect("connect");
        let response = client.request(&metrics_request(42)).expect("request");
        assert_eq!(response.id(), 42, "the stale id-41 line must be skipped, got {response:?}");
        server.join().expect("server");
    }

    #[test]
    fn request_streaming_hands_progress_frames_to_the_callback() {
        use crate::protocol::{Progress, ProgressBody};
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
        let addr = listener.local_addr().expect("local addr");
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut stream = stream;
            let mut line = String::new();
            reader.read_line(&mut line).expect("read request");
            let p1 = Progress {
                id: 9,
                body: ProgressBody::Score {
                    candidates_scanned: 64,
                    best_objective: Some(0.5),
                    workers: 2,
                },
            };
            let p2 = Progress {
                id: 9,
                body: ProgressBody::Score {
                    candidates_scanned: 128,
                    best_objective: Some(0.75),
                    workers: 2,
                },
            };
            let done = Response::Metrics { id: 9, rows: vec![] };
            stream
                .write_all(
                    format!("{}\n{}\n{}\n", p1.to_json(), p2.to_json(), done.to_json()).as_bytes(),
                )
                .expect("write frames");
        });
        let mut client = SvcClient::connect(addr).expect("connect");
        let mut scanned = Vec::new();
        let response = client
            .request_streaming(&metrics_request(9), |p| {
                if let ProgressBody::Score { candidates_scanned, .. } = &p.body {
                    scanned.push(*candidates_scanned);
                }
            })
            .expect("request");
        assert_eq!(response.id(), 9);
        assert_eq!(scanned, vec![64, 128], "both progress frames observed, in order");
        assert!(!client.is_poisoned());
        server.join().expect("server");
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy { max_attempts: 8, max_backoff: Duration::from_millis(100) };
        assert_eq!(policy.backoff(1, 10), Duration::from_millis(10));
        assert_eq!(policy.backoff(2, 10), Duration::from_millis(20));
        assert_eq!(policy.backoff(3, 10), Duration::from_millis(40));
        assert_eq!(policy.backoff(5, 10), Duration::from_millis(100), "capped");
        assert_eq!(policy.backoff(1, 500), Duration::from_millis(100), "hint itself is capped");
    }

    fn quick_policy(max_rounds: u32) -> FailoverPolicy {
        FailoverPolicy {
            max_rounds,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
        }
    }

    fn standby_refusal(id: u64) -> Response {
        Response::Error {
            id,
            kind: ErrorKind::Standby,
            message: "standby: read-only until promoted".to_string(),
        }
    }

    #[test]
    fn failover_skips_a_dead_address() {
        // A listener bound then dropped: connecting to it is refused.
        let dead = {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.local_addr().expect("local addr").to_string()
        };
        let (live, server) = scripted_server(vec![Response::Metrics { id: 1, rows: vec![] }]);
        let mut client = FailoverClient::new(vec![dead, live.to_string()], quick_policy(2));
        let response = client.request(&metrics_request(1)).expect("failover past dead address");
        assert!(matches!(response, Response::Metrics { id: 1, .. }), "got {response:?}");
        assert_eq!(client.current_addr(), live.to_string(), "settled on the live address");
        server.join().expect("server");
    }

    #[test]
    fn failover_rotates_past_a_standby_refusal_to_the_primary() {
        let (standby, standby_server) = scripted_server(vec![standby_refusal(2)]);
        let (primary, primary_server) =
            scripted_server(vec![Response::Metrics { id: 2, rows: vec![] }]);
        let mut client =
            FailoverClient::new(vec![standby.to_string(), primary.to_string()], quick_policy(1));
        let response = client.request(&metrics_request(2)).expect("rotate to primary");
        assert!(matches!(response, Response::Metrics { id: 2, .. }), "got {response:?}");
        assert_eq!(client.current_addr(), primary.to_string());
        standby_server.join().expect("standby server");
        primary_server.join().expect("primary server");
    }

    #[test]
    fn all_standby_refusals_come_back_as_the_refusal_not_an_error() {
        // A fleet where nobody has promoted yet: the refusal is an
        // answer the caller can act on (wait, retry), not a transport
        // failure.
        let (addr, server) = scripted_server(vec![standby_refusal(3)]);
        let mut client = FailoverClient::new(vec![addr.to_string()], quick_policy(1));
        let response = client.request(&metrics_request(3)).expect("refusal is Ok, not Err");
        assert!(
            matches!(response, Response::Error { kind: ErrorKind::Standby, .. }),
            "got {response:?}"
        );
        server.join().expect("server");
    }

    #[test]
    fn mid_request_connection_loss_fails_over_to_the_next_address() {
        // Server 1 accepts, reads the request, then slams the
        // connection — the client must retry on server 2 within the
        // same round.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let flaky = listener.local_addr().expect("local addr").to_string();
        let flaky_server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            reader.read_line(&mut line).expect("read request");
            // Dropping the stream here sends EOF before any response.
        });
        let (live, live_server) = scripted_server(vec![Response::Metrics { id: 4, rows: vec![] }]);
        let mut client = FailoverClient::new(vec![flaky, live.to_string()], quick_policy(1));
        let response = client.request(&metrics_request(4)).expect("failover after EOF");
        assert!(matches!(response, Response::Metrics { id: 4, .. }), "got {response:?}");
        flaky_server.join().expect("flaky server");
        live_server.join().expect("live server");
    }

    #[test]
    fn exhausted_rounds_surface_the_last_transport_error() {
        let dead = {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.local_addr().expect("local addr").to_string()
        };
        let mut client = FailoverClient::new(vec![dead], quick_policy(2));
        let err = client.request(&metrics_request(5)).expect_err("a dead fleet is an error");
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::ConnectionRefused | std::io::ErrorKind::NotConnected
            ),
            "got {err:?}"
        );
    }
}
