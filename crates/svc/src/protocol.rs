//! Request/response schema of the provisioning service and its
//! JSON-lines wire form.
//!
//! One request or response per line. Two work request kinds mirror the
//! two evaluation paths the library offers:
//!
//! * `score` — ensemble shape + node budget → every canonical feasible
//!   placement evaluated with the closed-form predictor
//!   ([`scheduler::fast_eval`]), ranked by `F(Pᵁ·ᴬ·ᴾ)`, top-k returned.
//! * `run` — a fully placed spec → one simulated execution through
//!   [`runtime::EnsembleRunner`], summarized per member.
//!
//! Plus `metrics`, answered immediately from the live counters (it never
//! queues, so it works under overload — that is the point of a health
//! endpoint).
//!
//! ```text
//! → {"type":"score","id":1,"members":[{"sim_cores":16,"analyses":[8]}],
//!    "max_nodes":3,"cores_per_node":32,"top_k":3,"steps":6,"workloads":"small"}
//! ← {"type":"score_result","id":1,"cached":false,"elapsed_ms":2.1,
//!    "placements":[{"assignment":[0,0],"objective":0.93,...}]}
//! ```

use std::time::Duration;

use ensemble_core::{ComponentSpec, EnsembleSpec, MemberSpec};
use scheduler::{EnsembleShape, NodeBudget};

use crate::json::{obj, Value};

/// Which workload map a request evaluates under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Workloads {
    /// The paper's Cori-scale workloads (default).
    #[default]
    Paper,
    /// Laptop-scale workloads (same contention shapes, ~1000× less
    /// virtual work) — what tests and benchmarks use.
    Small,
}

impl Workloads {
    fn tag(self) -> &'static str {
        match self {
            Workloads::Paper => "paper",
            Workloads::Small => "small",
        }
    }
}

/// A `score` request: rank placements of `shape` under `budget`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreRequest {
    /// Component structure to place.
    pub shape: EnsembleShape,
    /// Node/core budget constraining the enumeration.
    pub budget: NodeBudget,
    /// Placements to return (best-first). Zero means all.
    pub top_k: usize,
    /// Steps assumed by the closed-form evaluation.
    pub steps: u64,
    /// Workload scale.
    pub workloads: Workloads,
    /// Scan worker threads for this request. Zero defers to the
    /// service's configured default. Never part of the cache key: the
    /// scan is bit-identical at every worker count, so results are
    /// shared across requests that differ only here.
    pub workers: usize,
}

/// A `submit` request: hand an *unplaced* shape to the co-scheduler,
/// which places it against the live residual capacity (queueing or
/// backfilling as needed) and then runs it at the decided placement.
/// Requires the service to be started in co-scheduling mode.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// Component structure to place and run.
    pub shape: EnsembleShape,
    /// In situ steps to simulate once placed.
    pub steps: u64,
    /// Per-step jitter fraction.
    pub jitter: f64,
    /// RNG seed.
    pub seed: u64,
    /// Workload scale.
    pub workloads: Workloads,
}

/// A `run` request: simulate one fully placed spec.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRequest {
    /// The placed ensemble.
    pub spec: EnsembleSpec,
    /// In situ steps to simulate.
    pub steps: u64,
    /// Per-step jitter fraction.
    pub jitter: f64,
    /// RNG seed.
    pub seed: u64,
    /// Workload scale.
    pub workloads: Workloads,
}

/// The work carried by a request.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Rank placements analytically.
    Score(ScoreRequest),
    /// Full simulated run.
    Run(RunRequest),
    /// Co-scheduled run: the service places the shape against live
    /// residual capacity, then runs it.
    Submit(SubmitRequest),
    /// Re-fetch the result of a completed `run` by its job id (the
    /// request id the original `run` carried). Served from the
    /// completed-job index, which the journal rebuilds across restarts.
    Attach {
        /// Job id of the completed run to fetch.
        job: u64,
    },
    /// Metrics snapshot (served out-of-band, never queued).
    Metrics,
    /// Open a replication stream: the server tails its journal and
    /// streams every record (plus heartbeats carrying the fencing
    /// epoch) over this connection until the client hangs up. Served
    /// out-of-band by the connection's own thread, never queued.
    Replicate,
}

/// Opt-in request for interim `progress` frames ahead of the final
/// response. Absent from the wire entirely when not requested, so
/// legacy clients see byte-identical behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProgressSpec {
    /// Emit a frame roughly every N candidates scanned (`score` only).
    pub every_candidates: Option<u64>,
    /// Emit a frame at most every T milliseconds of wall clock.
    pub every_ms: Option<u64>,
}

impl ProgressSpec {
    /// The throttle applied when `{"progress":{}}` names no cadence:
    /// one frame per 100 ms.
    pub const DEFAULT_EVERY_MS: u64 = 100;
}

/// One client request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the response.
    pub id: u64,
    /// Relative deadline; expired requests are answered with a
    /// `deadline` error instead of (or part-way through) executing.
    pub deadline: Option<Duration>,
    /// When set, the server interleaves `progress` frames before the
    /// final response on the same connection.
    pub progress: Option<ProgressSpec>,
    /// Optional tenant id for per-tenant metrics attribution (and,
    /// later, quotas). Absent from the wire when unset, so legacy
    /// clients see byte-identical behavior.
    pub tenant: Option<String>,
    /// The work.
    pub body: RequestBody,
}

/// One ranked placement in a score response.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedPlacement {
    /// Flattened node assignment (member-major, simulation first).
    pub assignment: Vec<usize>,
    /// Objective `F(Pᵁ·ᴬ·ᴾ)`.
    pub objective: f64,
    /// Nodes provisioned.
    pub nodes_used: usize,
    /// Predicted ensemble makespan, seconds.
    pub ensemble_makespan: f64,
    /// Whether the paper's Eq. 4 holds for every coupling.
    pub eq4_satisfied: bool,
}

/// Per-member summary of a run response.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberSummary {
    /// `σ̄*`, seconds.
    pub sigma_star: f64,
    /// `E` (Eq. 3).
    pub efficiency: f64,
    /// `CP` (Eq. 6).
    pub cp: f64,
    /// Member makespan, seconds.
    pub makespan: f64,
}

/// Structured error kinds a request can be answered with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line was not valid JSON or not a valid request.
    Malformed,
    /// The deadline expired before a result was produced.
    Deadline,
    /// The request was cancelled (client gone, explicit cancel).
    Cancelled,
    /// The spec/budget was structurally invalid or infeasible.
    Invalid,
    /// Evaluation failed internally.
    Internal,
    /// An `attach` named a job the completed-run index does not hold.
    NotFound,
    /// The service is shutting down and no longer admits work.
    ShuttingDown,
    /// The service is a warm standby: it serves read-only requests
    /// (`metrics`, `attach`) but does not admit work until promoted.
    Standby,
}

impl ErrorKind {
    /// Wire tag.
    pub fn tag(self) -> &'static str {
        match self {
            ErrorKind::Malformed => "malformed",
            ErrorKind::Deadline => "deadline",
            ErrorKind::Cancelled => "cancelled",
            ErrorKind::Invalid => "invalid",
            ErrorKind::Internal => "internal",
            ErrorKind::NotFound => "not_found",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::Standby => "standby",
        }
    }

    fn from_tag(tag: &str) -> Option<Self> {
        Some(match tag {
            "malformed" => ErrorKind::Malformed,
            "deadline" => ErrorKind::Deadline,
            "cancelled" => ErrorKind::Cancelled,
            "invalid" => ErrorKind::Invalid,
            "internal" => ErrorKind::Internal,
            "not_found" => ErrorKind::NotFound,
            "shutting_down" => ErrorKind::ShuttingDown,
            "standby" => ErrorKind::Standby,
            _ => return None,
        })
    }
}

/// One service response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Ranked placements for a score request.
    ScoreResult {
        /// Echoed request id.
        id: u64,
        /// Best-first placements.
        placements: Vec<RankedPlacement>,
        /// True when served from the score cache.
        cached: bool,
        /// Submit→response latency, milliseconds.
        elapsed_ms: f64,
        /// Worker threads the scan actually ran with (zero for cache
        /// hits — no scan happened).
        scan_workers: u64,
        /// Candidates the scan evaluated before finishing (or being
        /// stopped by deadline/cancel). Zero for cache hits.
        candidates_scanned: u64,
    },
    /// Summary of a completed simulated run.
    RunResult {
        /// Echoed request id.
        id: u64,
        /// Ensemble makespan, seconds.
        ensemble_makespan: f64,
        /// Per-member summaries, member order.
        members: Vec<MemberSummary>,
        /// Submit→response latency, milliseconds.
        elapsed_ms: f64,
    },
    /// Summary of a completed co-scheduled run, including the placement
    /// the scheduler decided and the residual capacity it left behind.
    SubmitResult {
        /// Echoed request id.
        id: u64,
        /// Physical node assignment chosen (member-major, simulation
        /// first) — same layout as a score placement.
        assignment: Vec<usize>,
        /// Objective `F(Pᵁ·ᴬ·ᴾ)` of residents + this job at admission.
        objective: f64,
        /// Nodes this job occupies.
        nodes_used: u64,
        /// True when the job started ahead of the queue head via
        /// backfill.
        backfilled: bool,
        /// Wall-clock time spent in the admission queue, milliseconds.
        queue_wait_ms: f64,
        /// Free cores per node right after this job's reservation
        /// opened (the residual the *next* submit will see).
        residual: Vec<u64>,
        /// Ensemble makespan, seconds.
        ensemble_makespan: f64,
        /// Per-member summaries, member order.
        members: Vec<MemberSummary>,
        /// Submit→response latency, milliseconds.
        elapsed_ms: f64,
    },
    /// Metrics snapshot rows.
    Metrics {
        /// Echoed request id.
        id: u64,
        /// `(metric, value)` rows (see `MetricsSnapshot::rows`).
        rows: Vec<(String, f64)>,
    },
    /// Admission refused: the queue is full. Retry after the hint.
    Overloaded {
        /// Echoed request id.
        id: u64,
        /// Suggested client back-off, milliseconds.
        retry_after_ms: u64,
    },
    /// Structured failure.
    Error {
        /// Echoed request id (zero when the request had none).
        id: u64,
        /// Failure class.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// The echoed request id.
    pub fn id(&self) -> u64 {
        match self {
            Response::ScoreResult { id, .. }
            | Response::RunResult { id, .. }
            | Response::SubmitResult { id, .. }
            | Response::Metrics { id, .. }
            | Response::Overloaded { id, .. }
            | Response::Error { id, .. } => *id,
        }
    }
}

fn field<'v>(v: &'v Value, key: &str) -> Result<&'v Value, String> {
    v.get(key).ok_or_else(|| format!("missing field '{key}'"))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
    field(v, key)?.as_u64().ok_or_else(|| format!("field '{key}' must be a non-negative integer"))
}

fn f64_field(v: &Value, key: &str) -> Result<f64, String> {
    field(v, key)?.as_f64().ok_or_else(|| format!("field '{key}' must be a number"))
}

impl Request {
    /// Encodes the request as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// Encodes the request as a JSON value (the journal embeds requests
    /// inside its own records).
    pub fn to_value(&self) -> Value {
        let mut fields: Vec<(&str, Value)> = Vec::new();
        match &self.body {
            RequestBody::Score(s) => {
                fields.push(("type", "score".into()));
                fields.push(("id", self.id.into()));
                fields.push((
                    "members",
                    Value::Arr(
                        s.shape
                            .members
                            .iter()
                            .map(|(sim, anas)| {
                                obj(vec![
                                    ("sim_cores", u64::from(*sim).into()),
                                    (
                                        "analyses",
                                        Value::Arr(
                                            anas.iter().map(|&a| u64::from(a).into()).collect(),
                                        ),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ));
                fields.push(("max_nodes", s.budget.max_nodes.into()));
                fields.push(("cores_per_node", u64::from(s.budget.cores_per_node).into()));
                fields.push(("top_k", s.top_k.into()));
                fields.push(("steps", s.steps.into()));
                fields.push(("workloads", s.workloads.tag().into()));
                if s.workers != 0 {
                    fields.push(("workers", s.workers.into()));
                }
            }
            RequestBody::Run(r) => {
                fields.push(("type", "run".into()));
                fields.push(("id", self.id.into()));
                fields.push((
                    "members",
                    Value::Arr(
                        r.spec
                            .members
                            .iter()
                            .map(|m| {
                                let sim_node =
                                    m.simulation.nodes.iter().next().copied().unwrap_or(0);
                                obj(vec![
                                    ("sim_cores", u64::from(m.simulation.cores).into()),
                                    ("sim_node", sim_node.into()),
                                    (
                                        "analyses",
                                        Value::Arr(
                                            m.analyses
                                                .iter()
                                                .map(|a| {
                                                    let node =
                                                        a.nodes.iter().next().copied().unwrap_or(0);
                                                    obj(vec![
                                                        ("cores", u64::from(a.cores).into()),
                                                        ("node", node.into()),
                                                    ])
                                                })
                                                .collect(),
                                        ),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ));
                fields.push(("steps", r.steps.into()));
                fields.push(("jitter", r.jitter.into()));
                fields.push(("seed", r.seed.into()));
                fields.push(("workloads", r.workloads.tag().into()));
            }
            RequestBody::Submit(s) => {
                fields.push(("type", "submit".into()));
                fields.push(("id", self.id.into()));
                fields.push((
                    "members",
                    Value::Arr(
                        s.shape
                            .members
                            .iter()
                            .map(|(sim, anas)| {
                                obj(vec![
                                    ("sim_cores", u64::from(*sim).into()),
                                    (
                                        "analyses",
                                        Value::Arr(
                                            anas.iter().map(|&a| u64::from(a).into()).collect(),
                                        ),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ));
                fields.push(("steps", s.steps.into()));
                fields.push(("jitter", s.jitter.into()));
                fields.push(("seed", s.seed.into()));
                fields.push(("workloads", s.workloads.tag().into()));
            }
            RequestBody::Attach { job } => {
                fields.push(("type", "attach".into()));
                fields.push(("id", self.id.into()));
                fields.push(("job", (*job).into()));
            }
            RequestBody::Metrics => {
                fields.push(("type", "metrics".into()));
                fields.push(("id", self.id.into()));
            }
            RequestBody::Replicate => {
                fields.push(("type", "replicate".into()));
                fields.push(("id", self.id.into()));
            }
        }
        if let Some(d) = self.deadline {
            fields.push(("deadline_ms", (d.as_millis() as u64).into()));
        }
        if let Some(p) = self.progress {
            let mut spec: Vec<(&str, Value)> = Vec::new();
            if let Some(n) = p.every_candidates {
                spec.push(("every_candidates", n.into()));
            }
            if let Some(t) = p.every_ms {
                spec.push(("every_ms", t.into()));
            }
            fields.push(("progress", obj(spec)));
        }
        if let Some(t) = &self.tenant {
            fields.push(("tenant", t.as_str().into()));
        }
        obj(fields)
    }

    /// Decodes a request from a parsed JSON value.
    pub fn from_value(v: &Value) -> Result<Request, String> {
        let id = match v.get("id") {
            Some(idv) => idv.as_u64().ok_or("field 'id' must be a non-negative integer")?,
            None => 0,
        };
        let deadline = match v.get("deadline_ms") {
            Some(d) => Some(Duration::from_millis(
                d.as_u64().ok_or("field 'deadline_ms' must be a non-negative integer")?,
            )),
            None => None,
        };
        let progress = match v.get("progress") {
            None => None,
            Some(p) => {
                if !matches!(p, Value::Obj(_)) {
                    return Err("field 'progress' must be an object".into());
                }
                Some(ProgressSpec {
                    every_candidates: p.get("every_candidates").and_then(Value::as_u64),
                    every_ms: p.get("every_ms").and_then(Value::as_u64),
                })
            }
        };
        let tenant = match v.get("tenant") {
            None => None,
            Some(t) => {
                let tag = t.as_str().ok_or("field 'tenant' must be a string")?;
                validate_tenant(tag)?;
                Some(tag.to_string())
            }
        };
        let kind = field(v, "type")?.as_str().ok_or("field 'type' must be a string")?;
        let workloads = match v.get("workloads").and_then(Value::as_str) {
            None | Some("paper") => Workloads::Paper,
            Some("small") => Workloads::Small,
            Some(other) => return Err(format!("unknown workloads '{other}'")),
        };
        let body = match kind {
            "metrics" => RequestBody::Metrics,
            "replicate" => RequestBody::Replicate,
            "attach" => RequestBody::Attach { job: u64_field(v, "job")? },
            "score" => {
                let members =
                    field(v, "members")?.as_arr().ok_or("field 'members' must be an array")?;
                if members.is_empty() {
                    return Err("score request needs at least one member".into());
                }
                let mut shape_members = Vec::with_capacity(members.len());
                for m in members {
                    let sim = u64_field(m, "sim_cores")?;
                    let anas = field(m, "analyses")?
                        .as_arr()
                        .ok_or("field 'analyses' must be an array")?
                        .iter()
                        .map(|a| {
                            a.as_u64()
                                .and_then(|c| u32::try_from(c).ok())
                                .ok_or("analysis core counts must be small integers")
                        })
                        .collect::<Result<Vec<u32>, _>>()?;
                    let sim = u32::try_from(sim).map_err(|_| "sim_cores too large".to_string())?;
                    shape_members.push((sim, anas));
                }
                RequestBody::Score(ScoreRequest {
                    shape: EnsembleShape { members: shape_members },
                    budget: NodeBudget {
                        max_nodes: u64_field(v, "max_nodes")? as usize,
                        cores_per_node: u32::try_from(u64_field(v, "cores_per_node")?)
                            .map_err(|_| "cores_per_node too large".to_string())?,
                    },
                    top_k: v.get("top_k").and_then(Value::as_usize).unwrap_or(0),
                    steps: v.get("steps").and_then(Value::as_u64).unwrap_or(6),
                    workloads,
                    workers: v.get("workers").and_then(Value::as_usize).unwrap_or(0),
                })
            }
            "run" => {
                let members =
                    field(v, "members")?.as_arr().ok_or("field 'members' must be an array")?;
                if members.is_empty() {
                    return Err("run request needs at least one member".into());
                }
                let mut specs = Vec::with_capacity(members.len());
                for m in members {
                    let sim_cores = u32::try_from(u64_field(m, "sim_cores")?)
                        .map_err(|_| "sim_cores too large".to_string())?;
                    let sim_node = u64_field(m, "sim_node")? as usize;
                    let analyses = field(m, "analyses")?
                        .as_arr()
                        .ok_or("field 'analyses' must be an array")?
                        .iter()
                        .map(|a| {
                            let cores = u32::try_from(u64_field(a, "cores")?)
                                .map_err(|_| "analysis cores too large".to_string())?;
                            let node = u64_field(a, "node")? as usize;
                            Ok(ComponentSpec::analysis(cores, node))
                        })
                        .collect::<Result<Vec<_>, String>>()?;
                    specs.push(MemberSpec::new(
                        ComponentSpec::simulation(sim_cores, sim_node),
                        analyses,
                    ));
                }
                RequestBody::Run(RunRequest {
                    spec: EnsembleSpec::new(specs),
                    steps: v.get("steps").and_then(Value::as_u64).unwrap_or(8),
                    jitter: v.get("jitter").and_then(Value::as_f64).unwrap_or(0.0),
                    seed: v.get("seed").and_then(Value::as_u64).unwrap_or(0),
                    workloads,
                })
            }
            "submit" => {
                let members =
                    field(v, "members")?.as_arr().ok_or("field 'members' must be an array")?;
                if members.is_empty() {
                    return Err("submit request needs at least one member".into());
                }
                let mut shape_members = Vec::with_capacity(members.len());
                for m in members {
                    let sim = u32::try_from(u64_field(m, "sim_cores")?)
                        .map_err(|_| "sim_cores too large".to_string())?;
                    let anas = field(m, "analyses")?
                        .as_arr()
                        .ok_or("field 'analyses' must be an array")?
                        .iter()
                        .map(|a| {
                            a.as_u64()
                                .and_then(|c| u32::try_from(c).ok())
                                .ok_or("analysis core counts must be small integers")
                        })
                        .collect::<Result<Vec<u32>, _>>()?;
                    shape_members.push((sim, anas));
                }
                RequestBody::Submit(SubmitRequest {
                    shape: EnsembleShape { members: shape_members },
                    steps: v.get("steps").and_then(Value::as_u64).unwrap_or(8),
                    jitter: v.get("jitter").and_then(Value::as_f64).unwrap_or(0.0),
                    seed: v.get("seed").and_then(Value::as_u64).unwrap_or(0),
                    workloads,
                })
            }
            other => return Err(format!("unknown request type '{other}'")),
        };
        Ok(Request { id, deadline, progress, tenant, body })
    }

    /// Decodes a request from one JSON line.
    pub fn from_json(line: &str) -> Result<Request, String> {
        let v = Value::parse(line).map_err(|e| e.to_string())?;
        Request::from_value(&v)
    }
}

/// Maximum accepted tenant-tag length, bytes.
pub const MAX_TENANT_LEN: usize = 64;

/// Validates a tenant tag: nonempty, at most [`MAX_TENANT_LEN`] bytes,
/// drawn from `[A-Za-z0-9._-]`. Rejecting everything else at decode
/// keeps a hostile client from growing the tenant table with arbitrary
/// strings and keeps the `tenant_<name>_<counter>` metric-row grammar
/// unambiguous (tags cannot contain `,`, whitespace, or further `_`
/// ambiguity beyond their own). Error messages start with
/// `invalid tenant` so the server can answer with a structured
/// `invalid` error instead of `malformed`.
pub fn validate_tenant(tag: &str) -> Result<(), String> {
    if tag.is_empty() {
        return Err("invalid tenant: tag must be nonempty".to_string());
    }
    if tag.len() > MAX_TENANT_LEN {
        return Err(format!(
            "invalid tenant: tag exceeds {MAX_TENANT_LEN} bytes ({} given)",
            tag.len()
        ));
    }
    if let Some(bad) =
        tag.chars().find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')))
    {
        return Err(format!("invalid tenant: character {bad:?} outside [A-Za-z0-9._-] in tag"));
    }
    Ok(())
}

/// Encodes one ranked placement as a JSON value (shared between score
/// responses and journal records).
pub(crate) fn placement_to_value(p: &RankedPlacement) -> Value {
    obj(vec![
        ("assignment", Value::Arr(p.assignment.iter().map(|&n| n.into()).collect())),
        ("objective", p.objective.into()),
        ("nodes_used", p.nodes_used.into()),
        ("ensemble_makespan", p.ensemble_makespan.into()),
        ("eq4_satisfied", p.eq4_satisfied.into()),
    ])
}

/// Decodes one ranked placement from a JSON value.
pub(crate) fn placement_from_value(p: &Value) -> Result<RankedPlacement, String> {
    Ok(RankedPlacement {
        assignment: field(p, "assignment")?
            .as_arr()
            .ok_or("assignment must be an array")?
            .iter()
            .map(|n| n.as_usize().ok_or("assignment entries must be ints"))
            .collect::<Result<Vec<_>, _>>()?,
        objective: f64_field(p, "objective")?,
        nodes_used: u64_field(p, "nodes_used")? as usize,
        ensemble_makespan: f64_field(p, "ensemble_makespan")?,
        eq4_satisfied: field(p, "eq4_satisfied")?
            .as_bool()
            .ok_or("eq4_satisfied must be a bool")?,
    })
}

fn member_to_value(m: &MemberSummary) -> Value {
    obj(vec![
        ("sigma_star", m.sigma_star.into()),
        ("efficiency", m.efficiency.into()),
        ("cp", m.cp.into()),
        ("makespan", m.makespan.into()),
    ])
}

fn member_from_value(m: &Value) -> Result<MemberSummary, String> {
    Ok(MemberSummary {
        sigma_star: f64_field(m, "sigma_star")?,
        efficiency: f64_field(m, "efficiency")?,
        cp: f64_field(m, "cp")?,
        makespan: f64_field(m, "makespan")?,
    })
}

impl Response {
    /// Encodes the response as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// Encodes the response as a JSON value (the journal embeds
    /// responses inside its own records).
    pub fn to_value(&self) -> Value {
        match self {
            Response::ScoreResult {
                id,
                placements,
                cached,
                elapsed_ms,
                scan_workers,
                candidates_scanned,
            } => obj(vec![
                ("type", "score_result".into()),
                ("id", (*id).into()),
                ("cached", (*cached).into()),
                ("elapsed_ms", (*elapsed_ms).into()),
                ("scan_workers", (*scan_workers).into()),
                ("candidates_scanned", (*candidates_scanned).into()),
                ("placements", Value::Arr(placements.iter().map(placement_to_value).collect())),
            ]),
            Response::RunResult { id, ensemble_makespan, members, elapsed_ms } => obj(vec![
                ("type", "run_result".into()),
                ("id", (*id).into()),
                ("ensemble_makespan", (*ensemble_makespan).into()),
                ("elapsed_ms", (*elapsed_ms).into()),
                ("members", Value::Arr(members.iter().map(member_to_value).collect())),
            ]),
            Response::SubmitResult {
                id,
                assignment,
                objective,
                nodes_used,
                backfilled,
                queue_wait_ms,
                residual,
                ensemble_makespan,
                members,
                elapsed_ms,
            } => obj(vec![
                ("type", "submit_result".into()),
                ("id", (*id).into()),
                ("assignment", Value::Arr(assignment.iter().map(|&n| n.into()).collect())),
                ("objective", (*objective).into()),
                ("nodes_used", (*nodes_used).into()),
                ("backfilled", (*backfilled).into()),
                ("queue_wait_ms", (*queue_wait_ms).into()),
                ("residual", Value::Arr(residual.iter().map(|&c| c.into()).collect())),
                ("ensemble_makespan", (*ensemble_makespan).into()),
                ("elapsed_ms", (*elapsed_ms).into()),
                ("members", Value::Arr(members.iter().map(member_to_value).collect())),
            ]),
            Response::Metrics { id, rows } => obj(vec![
                ("type", "metrics".into()),
                ("id", (*id).into()),
                ("rows", Value::Obj(rows.iter().map(|(k, v)| (k.clone(), (*v).into())).collect())),
            ]),
            Response::Overloaded { id, retry_after_ms } => obj(vec![
                ("type", "overloaded".into()),
                ("id", (*id).into()),
                ("retry_after_ms", (*retry_after_ms).into()),
            ]),
            Response::Error { id, kind, message } => obj(vec![
                ("type", "error".into()),
                ("id", (*id).into()),
                ("kind", kind.tag().into()),
                ("message", message.as_str().into()),
            ]),
        }
    }

    /// Decodes a response from one JSON line (the client side).
    pub fn from_json(line: &str) -> Result<Response, String> {
        let v = Value::parse(line).map_err(|e| e.to_string())?;
        Response::from_value(&v)
    }

    /// Decodes a response from a parsed JSON value.
    pub fn from_value(v: &Value) -> Result<Response, String> {
        let id = u64_field(v, "id")?;
        match field(v, "type")?.as_str().ok_or("field 'type' must be a string")? {
            "score_result" => {
                let placements = field(v, "placements")?
                    .as_arr()
                    .ok_or("field 'placements' must be an array")?
                    .iter()
                    .map(placement_from_value)
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(Response::ScoreResult {
                    id,
                    placements,
                    cached: field(v, "cached")?.as_bool().ok_or("cached must be a bool")?,
                    elapsed_ms: f64_field(v, "elapsed_ms")?,
                    // Absent on records written before the scan engine
                    // existed (journal replay): default to zero.
                    scan_workers: v.get("scan_workers").and_then(Value::as_u64).unwrap_or(0),
                    candidates_scanned: v
                        .get("candidates_scanned")
                        .and_then(Value::as_u64)
                        .unwrap_or(0),
                })
            }
            "run_result" => {
                let members = field(v, "members")?
                    .as_arr()
                    .ok_or("field 'members' must be an array")?
                    .iter()
                    .map(member_from_value)
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(Response::RunResult {
                    id,
                    ensemble_makespan: f64_field(v, "ensemble_makespan")?,
                    members,
                    elapsed_ms: f64_field(v, "elapsed_ms")?,
                })
            }
            "submit_result" => {
                let members = field(v, "members")?
                    .as_arr()
                    .ok_or("field 'members' must be an array")?
                    .iter()
                    .map(member_from_value)
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(Response::SubmitResult {
                    id,
                    assignment: field(v, "assignment")?
                        .as_arr()
                        .ok_or("assignment must be an array")?
                        .iter()
                        .map(|n| n.as_usize().ok_or("assignment entries must be ints"))
                        .collect::<Result<Vec<_>, _>>()?,
                    objective: f64_field(v, "objective")?,
                    nodes_used: u64_field(v, "nodes_used")?,
                    backfilled: field(v, "backfilled")?
                        .as_bool()
                        .ok_or("backfilled must be a bool")?,
                    queue_wait_ms: f64_field(v, "queue_wait_ms")?,
                    residual: field(v, "residual")?
                        .as_arr()
                        .ok_or("residual must be an array")?
                        .iter()
                        .map(|c| c.as_u64().ok_or("residual entries must be ints"))
                        .collect::<Result<Vec<_>, _>>()?,
                    ensemble_makespan: f64_field(v, "ensemble_makespan")?,
                    members,
                    elapsed_ms: f64_field(v, "elapsed_ms")?,
                })
            }
            "metrics" => {
                let rows = match field(v, "rows")? {
                    Value::Obj(fields) => fields
                        .iter()
                        .map(|(k, val)| {
                            val.as_f64()
                                .map(|n| (k.clone(), n))
                                .ok_or("metric values must be numbers")
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                    _ => return Err("field 'rows' must be an object".into()),
                };
                Ok(Response::Metrics { id, rows })
            }
            "overloaded" => {
                Ok(Response::Overloaded { id, retry_after_ms: u64_field(v, "retry_after_ms")? })
            }
            "error" => Ok(Response::Error {
                id,
                kind: ErrorKind::from_tag(
                    field(v, "kind")?.as_str().ok_or("kind must be a string")?,
                )
                .ok_or("unknown error kind")?,
                message: field(v, "message")?
                    .as_str()
                    .ok_or("message must be a string")?
                    .to_string(),
            }),
            other => Err(format!("unknown response type '{other}'")),
        }
    }
}

/// What an interim progress frame reports, by request kind.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgressBody {
    /// Scan progress of a `score` request.
    Score {
        /// Candidates evaluated so far.
        candidates_scanned: u64,
        /// Best objective seen so far (absent until one is feasible).
        best_objective: Option<f64>,
        /// Worker threads driving the scan.
        workers: u64,
    },
    /// Step progress of a `run` simulation.
    Run {
        /// Lowest simulated step across members (the ensemble frontier).
        steps: u64,
        /// Current simulated step per member, member order.
        member_steps: Vec<u64>,
    },
    /// Admission progress of a co-scheduled `submit` request.
    Submit {
        /// Wait-queue position ahead of this job (present while
        /// queued).
        queue_depth: Option<u64>,
        /// Decided physical assignment (present once placed, before
        /// the run starts).
        assignment: Option<Vec<usize>>,
    },
}

/// One interim progress frame, sent before the final response of a
/// progress-opted request.
#[derive(Debug, Clone, PartialEq)]
pub struct Progress {
    /// Echoed request id.
    pub id: u64,
    /// Kind-specific progress payload.
    pub body: ProgressBody,
}

impl Progress {
    /// Encodes the frame as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// Encodes the frame as a JSON value.
    pub fn to_value(&self) -> Value {
        let mut fields: Vec<(&str, Value)> =
            vec![("type", "progress".into()), ("id", self.id.into())];
        match &self.body {
            ProgressBody::Score { candidates_scanned, best_objective, workers } => {
                fields.push(("kind", "score".into()));
                fields.push(("candidates_scanned", (*candidates_scanned).into()));
                if let Some(best) = best_objective {
                    fields.push(("best_objective", (*best).into()));
                }
                fields.push(("workers", (*workers).into()));
            }
            ProgressBody::Run { steps, member_steps } => {
                fields.push(("kind", "run".into()));
                fields.push(("steps", (*steps).into()));
                fields.push((
                    "member_steps",
                    Value::Arr(member_steps.iter().map(|&s| s.into()).collect()),
                ));
            }
            ProgressBody::Submit { queue_depth, assignment } => {
                fields.push(("kind", "submit".into()));
                if let Some(d) = queue_depth {
                    fields.push(("queue_depth", (*d).into()));
                }
                if let Some(a) = assignment {
                    fields.push(("assignment", Value::Arr(a.iter().map(|&n| n.into()).collect())));
                }
            }
        }
        obj(fields)
    }

    /// Decodes a frame from a parsed JSON value.
    pub fn from_value(v: &Value) -> Result<Progress, String> {
        let id = u64_field(v, "id")?;
        let body = match field(v, "kind")?.as_str().ok_or("field 'kind' must be a string")? {
            "score" => ProgressBody::Score {
                candidates_scanned: u64_field(v, "candidates_scanned")?,
                best_objective: v.get("best_objective").and_then(Value::as_f64),
                workers: u64_field(v, "workers")?,
            },
            "run" => ProgressBody::Run {
                steps: u64_field(v, "steps")?,
                member_steps: field(v, "member_steps")?
                    .as_arr()
                    .ok_or("field 'member_steps' must be an array")?
                    .iter()
                    .map(|s| s.as_u64().ok_or("member_steps entries must be ints"))
                    .collect::<Result<Vec<_>, _>>()?,
            },
            "submit" => ProgressBody::Submit {
                queue_depth: v.get("queue_depth").and_then(Value::as_u64),
                assignment: match v.get("assignment") {
                    None => None,
                    Some(a) => Some(
                        a.as_arr()
                            .ok_or("assignment must be an array")?
                            .iter()
                            .map(|n| n.as_usize().ok_or("assignment entries must be ints"))
                            .collect::<Result<Vec<_>, _>>()?,
                    ),
                },
            },
            other => return Err(format!("unknown progress kind '{other}'")),
        };
        Ok(Progress { id, body })
    }
}

/// One wire frame of a (possibly streaming) reply: zero or more
/// `Progress` frames followed by exactly one `Final` response.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Interim progress of a progress-opted request.
    Progress(Progress),
    /// The terminal response; exactly one per request.
    Final(Response),
}

impl Frame {
    /// The request id this frame answers.
    pub fn id(&self) -> u64 {
        match self {
            Frame::Progress(p) => p.id,
            Frame::Final(r) => r.id(),
        }
    }

    /// Encodes the frame as one JSON line (no trailing newline).
    /// Final responses encode exactly as [`Response::to_json`] — the
    /// frame wrapper adds nothing to the wire.
    pub fn to_json(&self) -> String {
        match self {
            Frame::Progress(p) => p.to_json(),
            Frame::Final(r) => r.to_json(),
        }
    }

    /// Decodes one reply line into a frame: `{"type":"progress",...}`
    /// becomes [`Frame::Progress`], anything else a final [`Response`].
    pub fn from_json(line: &str) -> Result<Frame, String> {
        let v = Value::parse(line).map_err(|e| e.to_string())?;
        if v.get("type").and_then(Value::as_str) == Some("progress") {
            Ok(Frame::Progress(Progress::from_value(&v)?))
        } else {
            Ok(Frame::Final(Response::from_value(&v)?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn score_request() -> Request {
        Request {
            id: 42,
            deadline: Some(Duration::from_millis(750)),
            progress: None,
            tenant: None,
            body: RequestBody::Score(ScoreRequest {
                shape: EnsembleShape::uniform(2, 16, 1, 8),
                budget: NodeBudget { max_nodes: 3, cores_per_node: 32 },
                top_k: 5,
                steps: 6,
                workloads: Workloads::Small,
                workers: 0,
            }),
        }
    }

    #[test]
    fn score_request_roundtrips() {
        let req = score_request();
        let decoded = Request::from_json(&req.to_json()).unwrap();
        assert_eq!(decoded, req);
    }

    #[test]
    fn score_request_workers_roundtrip_and_default() {
        let mut req = score_request();
        // workers = 0 (service default) stays off the wire entirely.
        assert!(!req.to_json().contains("workers"), "{}", req.to_json());
        if let RequestBody::Score(ref mut s) = req.body {
            s.workers = 4;
        }
        let line = req.to_json();
        assert!(line.contains("\"workers\":4"), "{line}");
        assert_eq!(Request::from_json(&line).unwrap(), req);
    }

    #[test]
    fn run_request_roundtrips() {
        let req = Request {
            id: 7,
            deadline: None,
            progress: None,
            tenant: None,
            body: RequestBody::Run(RunRequest {
                spec: ensemble_core::ConfigId::C1_5.build(),
                steps: 8,
                jitter: 0.01,
                seed: 3,
                workloads: Workloads::Paper,
            }),
        };
        let decoded = Request::from_json(&req.to_json()).unwrap();
        assert_eq!(decoded, req);
    }

    #[test]
    fn attach_request_roundtrips() {
        let req = Request {
            id: 3,
            deadline: None,
            progress: None,
            tenant: None,
            body: RequestBody::Attach { job: 77 },
        };
        let line = req.to_json();
        assert!(line.contains("\"type\":\"attach\""), "{line}");
        assert!(line.contains("\"job\":77"), "{line}");
        let decoded = Request::from_json(&line).unwrap();
        assert_eq!(decoded, req);
        // A missing job id is malformed, not a silent default.
        assert!(Request::from_json(r#"{"type":"attach","id":3}"#).unwrap_err().contains("job"));
    }

    #[test]
    fn submit_request_roundtrips() {
        let req = Request {
            id: 11,
            deadline: Some(Duration::from_millis(5000)),
            progress: None,
            tenant: Some("team-a".into()),
            body: RequestBody::Submit(SubmitRequest {
                shape: EnsembleShape::uniform(2, 16, 1, 8),
                steps: 4,
                jitter: 0.0,
                seed: 7,
                workloads: Workloads::Small,
            }),
        };
        let line = req.to_json();
        assert!(line.contains("\"type\":\"submit\""), "{line}");
        assert!(line.contains("\"tenant\":\"team-a\""), "{line}");
        assert_eq!(Request::from_json(&line).unwrap(), req);
        // An empty member list is malformed.
        let err = Request::from_json(r#"{"type":"submit","id":1,"members":[]}"#).unwrap_err();
        assert!(err.contains("at least one member"), "{err}");
    }

    #[test]
    fn tenant_stays_off_the_wire_when_unset() {
        // Legacy wire lines are byte-identical: no tenant key appears
        // unless the client set one, and absent decodes to None.
        let req = score_request();
        assert!(!req.to_json().contains("tenant"), "{}", req.to_json());
        assert_eq!(Request::from_json(&req.to_json()).unwrap().tenant, None);
        let mut with = req.clone();
        with.tenant = Some("acme".into());
        assert_eq!(Request::from_json(&with.to_json()).unwrap(), with);
        // A non-string tenant is refused, not silently dropped.
        let err = Request::from_json(r#"{"type":"metrics","id":1,"tenant":7}"#).unwrap_err();
        assert!(err.contains("tenant"), "{err}");
    }

    #[test]
    fn tenant_tags_are_validated_at_decode() {
        for good in ["a", "team-a", "batch_7", "a.b.c", "A-Z_0.9", &"x".repeat(64)] {
            assert!(validate_tenant(good).is_ok(), "{good} should be accepted");
            let line = format!(r#"{{"type":"metrics","id":1,"tenant":"{good}"}}"#);
            assert_eq!(Request::from_json(&line).unwrap().tenant.as_deref(), Some(good));
        }
        for bad in ["", "has space", "semi;colon", "new\nline", "\u{e9}clair", &"x".repeat(65)] {
            let err = validate_tenant(bad).unwrap_err();
            assert!(err.starts_with("invalid tenant"), "{err}");
        }
        // The decode path refuses them too — a bad tag never reaches
        // the tenant table.
        let err =
            Request::from_json(r#"{"type":"metrics","id":1,"tenant":"no spaces"}"#).unwrap_err();
        assert!(err.starts_with("invalid tenant"), "{err}");
    }

    #[test]
    fn submit_result_roundtrips() {
        let r = Response::SubmitResult {
            id: 12,
            assignment: vec![0, 0, 1, 1],
            objective: 0.91,
            nodes_used: 2,
            backfilled: true,
            queue_wait_ms: 37.5,
            residual: vec![0, 16, 32],
            ensemble_makespan: 120.25,
            members: vec![MemberSummary {
                sigma_star: 10.0,
                efficiency: 0.9,
                cp: 1.0,
                makespan: 119.0,
            }],
            elapsed_ms: 44.0,
        };
        let line = r.to_json();
        assert!(line.contains("\"type\":\"submit_result\""), "{line}");
        assert!(line.contains("\"residual\":[0,16,32]"), "{line}");
        let decoded = Response::from_json(&line).unwrap();
        assert_eq!(decoded, r);
        assert_eq!(decoded.id(), 12);
    }

    #[test]
    fn submit_progress_frames_roundtrip() {
        // Queued: depth present, assignment absent.
        let queued = Progress {
            id: 4,
            body: ProgressBody::Submit { queue_depth: Some(3), assignment: None },
        };
        let line = queued.to_json();
        assert!(line.contains("\"kind\":\"submit\""), "{line}");
        assert!(!line.contains("assignment"), "{line}");
        match Frame::from_json(&line).unwrap() {
            Frame::Progress(p) => assert_eq!(p.body, queued.body),
            other => panic!("expected progress frame, got {other:?}"),
        }
        // Placed: assignment present, depth absent.
        let placed = Progress {
            id: 4,
            body: ProgressBody::Submit { queue_depth: None, assignment: Some(vec![1, 1]) },
        };
        let line = placed.to_json();
        assert!(!line.contains("queue_depth"), "{line}");
        match Frame::from_json(&line).unwrap() {
            Frame::Progress(p) => assert_eq!(p.body, placed.body),
            other => panic!("expected progress frame, got {other:?}"),
        }
    }

    #[test]
    fn not_found_error_roundtrips() {
        let r = Response::Error {
            id: 9,
            kind: ErrorKind::NotFound,
            message: "no completed run with job id 9".into(),
        };
        assert_eq!(Response::from_json(&r.to_json()).unwrap(), r);
    }

    #[test]
    fn responses_roundtrip() {
        let responses = vec![
            Response::ScoreResult {
                id: 1,
                placements: vec![RankedPlacement {
                    assignment: vec![0, 0, 1, 1],
                    objective: 0.875,
                    nodes_used: 2,
                    ensemble_makespan: 123.5,
                    eq4_satisfied: true,
                }],
                cached: true,
                elapsed_ms: 0.25,
                scan_workers: 2,
                candidates_scanned: 17,
            },
            Response::RunResult {
                id: 2,
                ensemble_makespan: 760.0,
                members: vec![MemberSummary {
                    sigma_star: 20.5,
                    efficiency: 0.93,
                    cp: 1.0,
                    makespan: 758.5,
                }],
                elapsed_ms: 14.0,
            },
            Response::Metrics {
                id: 3,
                rows: vec![("queue_depth".into(), 2.0), ("cache_hit_rate".into(), 0.5)],
            },
            Response::Overloaded { id: 4, retry_after_ms: 40 },
            Response::Error {
                id: 5,
                kind: ErrorKind::Deadline,
                message: "deadline expired after 3 of 17 candidates".into(),
            },
        ];
        for r in responses {
            let decoded = Response::from_json(&r.to_json()).unwrap();
            assert_eq!(decoded, r);
            assert_eq!(decoded.id(), r.id());
        }
    }

    #[test]
    fn pre_scan_score_results_decode_with_zero_scan_fields() {
        // Journal records written before the scan engine carry neither
        // scan_workers nor candidates_scanned; replay must not reject
        // them.
        let line =
            r#"{"type":"score_result","id":1,"cached":false,"elapsed_ms":1.5,"placements":[]}"#;
        match Response::from_json(line).unwrap() {
            Response::ScoreResult { scan_workers, candidates_scanned, .. } => {
                assert_eq!(scan_workers, 0);
                assert_eq!(candidates_scanned, 0);
            }
            other => panic!("expected score_result, got {other:?}"),
        }
    }

    #[test]
    fn malformed_requests_are_described() {
        for (line, needle) in [
            ("{\"id\":1}", "type"),
            ("{\"type\":\"frobnicate\",\"id\":1}", "unknown request type"),
            ("{\"type\":\"score\",\"id\":1}", "members"),
            ("{\"type\":\"score\",\"id\":1,\"members\":[]}", "at least one member"),
            ("{\"type\":\"run\",\"id\":\"x\"}", "id"),
            ("not json at all", "at byte"),
        ] {
            let err = Request::from_json(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn progress_spec_roundtrips_through_the_request() {
        let mut req = Request::from_json(
            r#"{"type":"score","id":5,"members":[{"sim_cores":16,"analyses":[8]}],"max_nodes":2,"cores_per_node":32,"progress":{"every_candidates":256}}"#,
        )
        .unwrap();
        let spec = req.progress.expect("progress spec parsed");
        assert_eq!(spec.every_candidates, Some(256));
        assert_eq!(spec.every_ms, None);
        let again = Request::from_json(&req.to_json()).unwrap();
        assert_eq!(again.progress, req.progress);

        // An empty spec is a valid opt-in (server applies the default
        // time cadence); a non-object is refused.
        req = Request::from_json(r#"{"type":"metrics","id":1,"progress":{}}"#).unwrap();
        assert_eq!(req.progress, Some(ProgressSpec::default()));
        let err = Request::from_json(r#"{"type":"metrics","id":1,"progress":7}"#).unwrap_err();
        assert!(err.contains("progress"), "{err}");

        // Absent spec encodes to a line with no `progress` key at all —
        // the legacy wire format, byte for byte.
        req.progress = None;
        assert!(!req.to_json().contains("progress"), "{}", req.to_json());
    }

    #[test]
    fn progress_frames_roundtrip() {
        let score = Progress {
            id: 9,
            body: ProgressBody::Score {
                candidates_scanned: 4096,
                best_objective: Some(0.875),
                workers: 4,
            },
        };
        let line = score.to_json();
        assert!(line.contains("\"type\":\"progress\""), "{line}");
        match Frame::from_json(&line).unwrap() {
            Frame::Progress(p) => {
                assert_eq!(p.id, 9);
                assert_eq!(p.body, score.body);
            }
            other => panic!("expected progress frame, got {other:?}"),
        }

        // `best_objective` is omitted while no candidate has scored yet.
        let empty = Progress {
            id: 2,
            body: ProgressBody::Score { candidates_scanned: 0, best_objective: None, workers: 1 },
        };
        let line = empty.to_json();
        assert!(!line.contains("best_objective"), "{line}");
        match Frame::from_json(&line).unwrap() {
            Frame::Progress(p) => assert_eq!(p.body, empty.body),
            other => panic!("expected progress frame, got {other:?}"),
        }

        let run =
            Progress { id: 3, body: ProgressBody::Run { steps: 7, member_steps: vec![9, 7, 8] } };
        match Frame::from_json(&run.to_json()).unwrap() {
            Frame::Progress(p) => assert_eq!(p.body, run.body),
            other => panic!("expected progress frame, got {other:?}"),
        }
    }

    #[test]
    fn frames_dispatch_between_progress_and_final() {
        // A final response parses as Frame::Final and its wrapper adds
        // nothing to the wire — the frame encodes exactly as the
        // response does, so legacy peers see identical bytes.
        let response = Response::Overloaded { id: 4, retry_after_ms: 12 };
        let frame = Frame::Final(response);
        assert_eq!(frame.to_json(), Response::Overloaded { id: 4, retry_after_ms: 12 }.to_json());
        match Frame::from_json(&frame.to_json()).unwrap() {
            Frame::Final(Response::Overloaded { id: 4, retry_after_ms: 12 }) => {}
            other => panic!("expected the overloaded final, got {other:?}"),
        }
        assert_eq!(frame.id(), 4);
        let progress =
            Progress { id: 6, body: ProgressBody::Run { steps: 1, member_steps: vec![1] } };
        assert_eq!(Frame::from_json(&progress.to_json()).unwrap().id(), 6);
    }

    #[test]
    fn request_defaults_fill_in() {
        let req = Request::from_json(
            r#"{"type":"score","members":[{"sim_cores":16,"analyses":[8]}],"max_nodes":2,"cores_per_node":32}"#,
        )
        .unwrap();
        assert_eq!(req.id, 0);
        assert_eq!(req.deadline, None);
        match req.body {
            RequestBody::Score(s) => {
                assert_eq!(s.top_k, 0);
                assert_eq!(s.steps, 6);
                assert_eq!(s.workloads, Workloads::Paper);
            }
            other => panic!("expected score, got {other:?}"),
        }
    }
}
