//! Turns a finished execution (trace + solved estimates) into the full
//! [`EnsembleReport`]: steady-state stage times, `σ̄*`, efficiency,
//! placement indicator, makespans, Table 1 metrics.

use ensemble_core::{
    coupling_scenario, efficiency, extract_steady_state, makespan as model_makespan,
    placement_indicator, sigma_star, ComponentRef, EnsembleSpec, WarmupPolicy,
};
use hpc_platform::HwCounters;
use metrics::{member_makespan, ComponentReport, EnsembleReport, MemberReport, TraditionalMetrics};

use crate::error::{RuntimeError, RuntimeResult};
use crate::sim_exec::SimExecution;
use crate::thread_exec::ThreadExecution;

/// Builds the report of a simulated run.
pub fn build_report(
    config_label: &str,
    spec: &EnsembleSpec,
    exec: &SimExecution,
    n_steps: u64,
    warmup: WarmupPolicy,
) -> RuntimeResult<EnsembleReport> {
    let mut members = Vec::with_capacity(spec.members.len());
    let mut ensemble_makespan = 0.0f64;
    for (i, member) in spec.members.iter().enumerate() {
        let samples = exec.trace.member_samples(i, member.k());
        let stage_times = extract_steady_state(&samples, warmup)?;
        let sigma = sigma_star(&stage_times);
        let measured =
            member_makespan(&exec.trace, i, member.k()).ok_or(RuntimeError::NoSamples)?;
        ensemble_makespan = ensemble_makespan.max(measured);
        let e = efficiency(&stage_times);
        let scenarios = (0..member.k()).map(|j| coupling_scenario(&stage_times, j)).collect();

        let mut components = Vec::with_capacity(1 + member.k());
        for (cref, comp) in std::iter::once((ComponentRef::simulation(i), &member.simulation))
            .chain(
                member
                    .analyses
                    .iter()
                    .enumerate()
                    .map(|(j, a)| (ComponentRef::analysis(i, j + 1), a)),
            )
        {
            let est = &exec.estimates[&cref];
            let counters = HwCounters::from_estimate(est, est.instructions_per_step, n_steps);
            let span = exec.trace.component_span(cref).map(|(s, e)| e - s).unwrap_or_default();
            components.push(ComponentReport {
                name: cref.to_string(),
                cores: comp.cores,
                nodes: comp.nodes.iter().copied().collect(),
                counters,
                metrics: TraditionalMetrics::from_counters(&counters, span),
            });
        }

        members.push(MemberReport {
            member: i,
            sigma_star: sigma,
            makespan: measured,
            makespan_model: model_makespan(&stage_times, n_steps),
            efficiency: e,
            cp: placement_indicator(member),
            scenarios,
            lost_frames: exec.lost_frames.get(i).copied().unwrap_or(0),
            stage_times,
            components,
        });
    }
    Ok(EnsembleReport {
        config: config_label.to_string(),
        n: spec.n(),
        m: spec.num_nodes(),
        n_steps,
        ensemble_makespan,
        members,
        staging_retries: 0,
        staging_giveups: 0,
        faults_injected: 0,
    })
}

/// Per-member trace from a threaded run reduced to a report (no
/// synthetic counters — real executions have no modeled counters, so
/// Table 1's counter metrics are zeroed and only times are filled).
/// Members whose outcome is `Failed` are omitted from the member rows
/// (they have no steady state to extract); the run's retry and fault
/// counters are carried onto the report.
pub fn build_threaded_report(
    config_label: &str,
    spec: &EnsembleSpec,
    exec: &ThreadExecution,
    n_steps: u64,
    warmup: WarmupPolicy,
) -> RuntimeResult<EnsembleReport> {
    let trace = &exec.trace;
    let mut members = Vec::with_capacity(spec.members.len());
    let mut ensemble_makespan = 0.0f64;
    for (i, member) in spec.members.iter().enumerate() {
        if exec.member_outcomes.get(i).is_some_and(|o| o.is_failed()) {
            continue;
        }
        let samples = trace.member_samples(i, member.k());
        let stage_times = extract_steady_state(&samples, warmup)?;
        let sigma = sigma_star(&stage_times);
        let measured = member_makespan(trace, i, member.k()).ok_or(RuntimeError::NoSamples)?;
        ensemble_makespan = ensemble_makespan.max(measured);
        let scenarios = (0..member.k()).map(|j| coupling_scenario(&stage_times, j)).collect();
        members.push(MemberReport {
            member: i,
            sigma_star: sigma,
            makespan: measured,
            makespan_model: model_makespan(&stage_times, n_steps),
            efficiency: efficiency(&stage_times),
            cp: placement_indicator(member),
            scenarios,
            lost_frames: 0,
            stage_times,
            components: Vec::new(),
        });
    }
    Ok(EnsembleReport {
        config: config_label.to_string(),
        n: spec.n(),
        m: spec.num_nodes(),
        n_steps,
        ensemble_makespan,
        members,
        staging_retries: exec.staging_stats.retries,
        staging_giveups: exec.staging_stats.giveups,
        faults_injected: exec.fault_stats.total_injected(),
    })
}
