//! Model calibration from measured executions: closing the loop between
//! the threaded runtime (real kernels, wall-clock stages) and the
//! simulated platform (architectural workloads).
//!
//! Given a measured trace of a component running alone on known cores,
//! this module fits the instruction count of a [`Workload`] so the
//! interference model reproduces the measured steady-state stage time
//! on the modeled machine. Ratios (cache behaviour, parallel fraction)
//! are taken from a template — typically the paper profiles — because a
//! wall-clock trace alone cannot identify them.

use ensemble_core::{extract_steady_state, ComponentRef, WarmupPolicy};
use hpc_platform::{BindPolicy, InterferenceModel, NodeSpec, PlacedWorkload, Platform, Workload};
use metrics::ExecutionTrace;

use crate::error::{RuntimeError, RuntimeResult};

/// Result of calibrating one component.
#[derive(Debug, Clone)]
pub struct CalibratedWorkload {
    /// The fitted workload (template ratios, fitted instruction count).
    pub workload: Workload,
    /// Measured steady-state compute-stage seconds.
    pub measured_seconds: f64,
    /// Model-predicted seconds after fitting (should match measured).
    pub fitted_seconds: f64,
}

/// Fits `template`'s instruction count so that a component with
/// `cores` cores alone on `node_spec` matches the measured compute
/// stage of `component` in `trace`.
pub fn calibrate_component(
    trace: &ExecutionTrace,
    component: ComponentRef,
    k_of_member: usize,
    cores: u32,
    node_spec: &NodeSpec,
    template: &Workload,
    warmup: WarmupPolicy,
) -> RuntimeResult<CalibratedWorkload> {
    let samples = trace.member_samples(component.member, k_of_member);
    let times = extract_steady_state(&samples, warmup)?;
    let measured_seconds = if component.is_simulation() {
        times.s
    } else {
        times.analyses.get(component.slot - 1).ok_or(RuntimeError::NoSamples)?.a
    };
    if measured_seconds <= 0.0 {
        return Err(RuntimeError::NoSamples);
    }

    // seconds = instructions × cpi / (freq × speedup); cpi is almost
    // independent of the instruction count (the miss ratio depends on
    // the working set, not on instructions), so one solve at the
    // template's count gives the seconds-per-instruction slope exactly.
    let mut platform = Platform::new(1, node_spec.clone(), hpc_platform::cori::aries_network());
    let alloc = platform.allocate(0, cores, BindPolicy::Spread)?;
    let model = InterferenceModel::default();
    let placed = PlacedWorkload { alloc, workload: template.clone() };
    let est = model.solve_node(node_spec, std::slice::from_ref(&placed), &[])[0].clone();
    let seconds_per_instruction = est.seconds_per_step / template.instructions_per_step;
    let fitted_instructions = measured_seconds / seconds_per_instruction;

    let mut workload = template.clone();
    workload.instructions_per_step = fitted_instructions;
    // Verify the fit by re-solving.
    let placed = PlacedWorkload {
        alloc: {
            let mut p = Platform::new(1, node_spec.clone(), hpc_platform::cori::aries_network());
            p.allocate(0, cores, BindPolicy::Spread)?
        },
        workload: workload.clone(),
    };
    let fitted = model.solve_node(node_spec, &[placed], &[])[0].clone();
    Ok(CalibratedWorkload { workload, measured_seconds, fitted_seconds: fitted.seconds_per_step })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thread_exec::{run_threaded, ThreadRunConfig};
    use ensemble_core::ConfigId;
    use kernels::md::MdConfig;
    use kernels::profile;
    use std::time::Duration;

    #[test]
    fn fit_reproduces_measured_seconds() {
        // Measure a real MD + analysis member, then fit both components.
        let cfg = ThreadRunConfig {
            spec: ConfigId::Cf.build(),
            md: MdConfig { atoms_per_side: 5, stride: 10, ..Default::default() },
            analysis_group_size: 32,
            analysis_sigma: 1.2,
            n_steps: 6,
            staging_capacity: 1,
            timeout: Duration::from_secs(60),
            kernel: None,
            fault_plan: None,
            retry: None,
            restart: None,
        };
        let exec = run_threaded(&cfg).unwrap();
        let node = hpc_platform::cori::cori_node();

        let sim_fit = calibrate_component(
            &exec.trace,
            ComponentRef::simulation(0),
            1,
            16,
            &node,
            &profile::simulation_workload(10),
            WarmupPolicy::FixedSteps(1),
        )
        .unwrap();
        let rel =
            (sim_fit.fitted_seconds - sim_fit.measured_seconds).abs() / sim_fit.measured_seconds;
        assert!(rel < 1e-9, "fit must be exact: {rel}");
        assert!(sim_fit.workload.instructions_per_step > 0.0);

        let ana_fit = calibrate_component(
            &exec.trace,
            ComponentRef::analysis(0, 1),
            1,
            8,
            &node,
            &profile::analysis_workload(),
            WarmupPolicy::FixedSteps(1),
        )
        .unwrap();
        assert!(
            (ana_fit.fitted_seconds - ana_fit.measured_seconds).abs() / ana_fit.measured_seconds
                < 1e-9
        );
    }

    #[test]
    fn calibrated_workload_drives_the_simulator() {
        // The fitted workload plugs straight into a simulated run whose
        // steady state then mirrors the measurement.
        let cfg = ThreadRunConfig {
            spec: ConfigId::Cc.build(),
            md: MdConfig { atoms_per_side: 4, stride: 8, ..Default::default() },
            analysis_group_size: 16,
            analysis_sigma: 1.0,
            n_steps: 5,
            staging_capacity: 1,
            timeout: Duration::from_secs(60),
            kernel: None,
            fault_plan: None,
            retry: None,
            restart: None,
        };
        let exec = run_threaded(&cfg).unwrap();
        let node = hpc_platform::cori::cori_node();
        let fit = calibrate_component(
            &exec.trace,
            ComponentRef::simulation(0),
            1,
            16,
            &node,
            &profile::simulation_workload(8),
            WarmupPolicy::FixedSteps(1),
        )
        .unwrap();

        let mut run = crate::sim_exec::SimRunConfig::paper(ConfigId::Cf.build());
        run.n_steps = 5;
        run.jitter = 0.0;
        run.workloads.set_override(ComponentRef::simulation(0), fit.workload.clone());
        let sim_exec = crate::sim_exec::run_simulated(&run).unwrap();
        let samples = sim_exec.trace.member_samples(0, 1);
        let times = extract_steady_state(&samples, WarmupPolicy::FixedSteps(1)).unwrap();
        let rel = (times.s - fit.measured_seconds).abs() / fit.measured_seconds;
        assert!(rel < 1e-6, "simulated S* {} vs measured {}", times.s, fit.measured_seconds);
    }

    #[test]
    fn missing_component_errors() {
        let trace = ExecutionTrace::default();
        let err = calibrate_component(
            &trace,
            ComponentRef::simulation(0),
            1,
            16,
            &hpc_platform::cori::cori_node(),
            &profile::simulation_workload(800),
            WarmupPolicy::default(),
        );
        assert!(err.is_err());
    }
}
