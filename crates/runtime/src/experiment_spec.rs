//! Declarative experiment descriptions: a serde-friendly schema users
//! write as JSON, covering the ensemble layout, placement, workload
//! scaling, and run settings — the runtime's equivalent of a batch
//! script.

use ensemble_core::{ComponentSpec, EnsembleSpec, MemberSpec};
use serde::{Deserialize, Serialize};

use crate::error::{RuntimeError, RuntimeResult};
use crate::sim_exec::{CouplingMode, SimRunConfig};
use crate::workload_map::WorkloadMap;

/// One analysis in a member description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalysisDesc {
    /// Cores for this analysis.
    pub cores: u32,
    /// Node index it runs on.
    pub node: usize,
    /// Work multiplier relative to the paper's analysis workload
    /// (1.0 = the paper's eigenvalue kernel).
    #[serde(default = "one")]
    pub work_scale: f64,
}

/// One ensemble member.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemberDesc {
    /// Simulation cores.
    pub sim_cores: u32,
    /// Simulation node.
    pub sim_node: usize,
    /// Work multiplier relative to the paper's simulation workload.
    #[serde(default = "one")]
    pub sim_work_scale: f64,
    /// Coupled analyses (K ≥ 1).
    pub analyses: Vec<AnalysisDesc>,
}

fn one() -> f64 {
    1.0
}

fn default_steps() -> u64 {
    37
}

fn default_stride() -> u64 {
    kernels::profile::PAPER_STRIDE
}

/// A complete experiment description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Experiment name (report label).
    pub name: String,
    /// The members.
    pub members: Vec<MemberDesc>,
    /// In situ steps to run.
    #[serde(default = "default_steps")]
    pub steps: u64,
    /// Simulation stride (MD steps per frame).
    #[serde(default = "default_stride")]
    pub stride: u64,
    /// Per-step jitter fraction.
    #[serde(default)]
    pub jitter: f64,
    /// RNG seed.
    #[serde(default)]
    pub seed: u64,
    /// Staging queue capacity (synchronous protocol capacity, or the
    /// in-transit queue depth when `in_transit` is set).
    #[serde(default = "one_u64")]
    pub staging_capacity: u64,
    /// Use in-transit (asynchronous) coupling.
    #[serde(default)]
    pub in_transit: bool,
    /// Node power cap in watts (optional).
    #[serde(default)]
    pub power_cap_watts: Option<f64>,
}

fn one_u64() -> u64 {
    1
}

impl ExperimentSpec {
    /// Parses an experiment from JSON.
    pub fn from_json(json: &str) -> RuntimeResult<Self> {
        serde_json::from_str(json).map_err(|e| {
            RuntimeError::Model(ensemble_core::ModelError::InvalidStageTimes {
                detail: format!("experiment spec parse error: {e}"),
            })
        })
    }

    /// Serializes the experiment to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serializes")
    }

    /// Builds the ensemble layout.
    pub fn ensemble(&self) -> EnsembleSpec {
        EnsembleSpec::new(
            self.members
                .iter()
                .map(|m| {
                    MemberSpec::new(
                        ComponentSpec::simulation(m.sim_cores, m.sim_node),
                        m.analyses
                            .iter()
                            .map(|a| ComponentSpec::analysis(a.cores, a.node))
                            .collect(),
                    )
                })
                .collect(),
        )
    }

    /// Builds the full simulated-run configuration, applying work-scale
    /// overrides.
    pub fn to_run_config(&self) -> RuntimeResult<SimRunConfig> {
        let spec = self.ensemble();
        spec.validate(None)?;
        let mut cfg = SimRunConfig::paper(spec);
        cfg.n_steps = self.steps;
        cfg.jitter = self.jitter;
        cfg.seed = self.seed;
        cfg.staging_capacity = self.staging_capacity;
        cfg.power_cap_watts = self.power_cap_watts;
        cfg.workloads = WorkloadMap::paper_defaults(self.stride);
        if self.in_transit {
            cfg.coupling =
                CouplingMode::Asynchronous { queue_capacity: self.staging_capacity as usize };
        }
        for (i, m) in self.members.iter().enumerate() {
            if (m.sim_work_scale - 1.0).abs() > f64::EPSILON {
                let base =
                    cfg.workloads.workload_for(ensemble_core::ComponentRef::simulation(i)).clone();
                cfg.workloads.set_override(
                    ensemble_core::ComponentRef::simulation(i),
                    base.scaled(m.sim_work_scale),
                );
            }
            for (j, a) in m.analyses.iter().enumerate() {
                if (a.work_scale - 1.0).abs() > f64::EPSILON {
                    let cref = ensemble_core::ComponentRef::analysis(i, j + 1);
                    let mut w = cfg.workloads.workload_for(cref).clone();
                    w.instructions_per_step *= a.work_scale;
                    cfg.workloads.set_override(cref, w);
                }
            }
        }
        Ok(cfg)
    }

    /// A ready-made example spec (the C1.5 layout).
    pub fn example() -> Self {
        ExperimentSpec {
            name: "c1.5-example".into(),
            members: vec![
                MemberDesc {
                    sim_cores: 16,
                    sim_node: 0,
                    sim_work_scale: 1.0,
                    analyses: vec![AnalysisDesc { cores: 8, node: 0, work_scale: 1.0 }],
                },
                MemberDesc {
                    sim_cores: 16,
                    sim_node: 1,
                    sim_work_scale: 1.0,
                    analyses: vec![AnalysisDesc { cores: 8, node: 1, work_scale: 1.0 }],
                },
            ],
            steps: 37,
            stride: default_stride(),
            jitter: 0.01,
            seed: 2021,
            staging_capacity: 1,
            in_transit: false,
            power_cap_watts: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_roundtrips_through_json() {
        let spec = ExperimentSpec::example();
        let json = spec.to_json();
        let back = ExperimentSpec::from_json(&json).unwrap();
        assert_eq!(back.name, "c1.5-example");
        assert_eq!(back.members.len(), 2);
        assert_eq!(back.ensemble().num_nodes(), 2);
    }

    #[test]
    fn minimal_json_uses_defaults() {
        let json = r#"{
            "name": "tiny",
            "members": [
                { "sim_cores": 16, "sim_node": 0,
                  "analyses": [ { "cores": 8, "node": 0 } ] }
            ]
        }"#;
        let spec = ExperimentSpec::from_json(json).unwrap();
        assert_eq!(spec.steps, 37);
        assert_eq!(spec.stride, kernels::profile::PAPER_STRIDE);
        assert_eq!(spec.staging_capacity, 1);
        assert!(!spec.in_transit);
        let cfg = spec.to_run_config().unwrap();
        assert_eq!(cfg.n_steps, 37);
    }

    #[test]
    fn work_scale_overrides_apply() {
        let mut spec = ExperimentSpec::example();
        spec.members[0].analyses[0].work_scale = 2.0;
        spec.members[1].sim_work_scale = 0.5;
        let cfg = spec.to_run_config().unwrap();
        let base_ana = kernels::profile::analysis_workload().instructions_per_step;
        let ana0 = cfg
            .workloads
            .workload_for(ensemble_core::ComponentRef::analysis(0, 1))
            .instructions_per_step;
        assert!((ana0 - 2.0 * base_ana).abs() < 1.0);
        let base_sim = kernels::profile::simulation_workload(spec.stride).instructions_per_step;
        let sim1 = cfg
            .workloads
            .workload_for(ensemble_core::ComponentRef::simulation(1))
            .instructions_per_step;
        assert!((sim1 - 0.5 * base_sim).abs() < 1.0);
    }

    #[test]
    fn in_transit_flag_selects_async_coupling() {
        let mut spec = ExperimentSpec::example();
        spec.in_transit = true;
        spec.staging_capacity = 4;
        let cfg = spec.to_run_config().unwrap();
        assert_eq!(cfg.coupling, CouplingMode::Asynchronous { queue_capacity: 4 });
    }

    #[test]
    fn bad_json_is_a_clean_error() {
        assert!(ExperimentSpec::from_json("{ not json").is_err());
        assert!(ExperimentSpec::from_json(r#"{"name": "x", "members": []}"#)
            .unwrap()
            .to_run_config()
            .is_err());
    }

    #[test]
    fn spec_runs_end_to_end() {
        let mut spec = ExperimentSpec::example();
        spec.steps = 4;
        spec.jitter = 0.0;
        let cfg = spec.to_run_config().unwrap();
        let exec = crate::sim_exec::run_simulated(&cfg).unwrap();
        assert_eq!(exec.trace.member_indexes(), vec![0, 1]);
    }
}
