//! High-level entry point: run a configuration, get a report.

use ensemble_core::{ConfigId, EnsembleSpec, WarmupPolicy};
use metrics::EnsembleReport;

use crate::error::RuntimeResult;
use crate::sim_exec::{run_simulated, SimExecution, SimRunConfig};
use crate::workload_map::WorkloadMap;

/// Builder for simulated ensemble runs.
#[derive(Debug, Clone)]
pub struct EnsembleRunner {
    label: String,
    config: SimRunConfig,
    warmup: WarmupPolicy,
}

impl EnsembleRunner {
    /// A runner for one of the paper's named configurations with the
    /// paper's settings.
    pub fn paper_config(id: ConfigId) -> Self {
        EnsembleRunner {
            label: id.label().to_string(),
            config: SimRunConfig::paper(id.build()),
            warmup: WarmupPolicy::default(),
        }
    }

    /// A runner for a custom ensemble spec (paper-scale workloads).
    pub fn custom(label: &str, spec: EnsembleSpec) -> Self {
        EnsembleRunner {
            label: label.to_string(),
            config: SimRunConfig::paper(spec),
            warmup: WarmupPolicy::default(),
        }
    }

    /// Switches to laptop-scale workloads (same contention shapes,
    /// ~1000× less virtual work) — used by tests and quick examples.
    pub fn small_scale(mut self) -> Self {
        self.config.workloads = WorkloadMap::small_defaults();
        self
    }

    /// Sets the number of in situ steps.
    pub fn steps(mut self, n: u64) -> Self {
        self.config.n_steps = n;
        self
    }

    /// Sets the per-step jitter fraction (0 = deterministic).
    pub fn jitter(mut self, j: f64) -> Self {
        self.config.jitter = j;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.config.seed = s;
        self
    }

    /// Disables the co-location interference model (ablation).
    pub fn without_interference(mut self) -> Self {
        self.config.interference.disabled = true;
        self
    }

    /// Forces remote pricing on all reads (data-locality ablation).
    pub fn force_remote_reads(mut self) -> Self {
        self.config.force_remote_reads = true;
        self
    }

    /// Sets the staging capacity (1 = paper, ≥2 = buffered ablation).
    pub fn staging_capacity(mut self, c: u64) -> Self {
        self.config.staging_capacity = c;
        self
    }

    /// Overrides the warm-up policy used in steady-state extraction.
    pub fn warmup(mut self, policy: WarmupPolicy) -> Self {
        self.warmup = policy;
        self
    }

    /// Mutable access to the full run configuration for advanced tuning.
    pub fn config_mut(&mut self) -> &mut SimRunConfig {
        &mut self.config
    }

    /// Executes the run, returning the raw execution.
    pub fn execute(&self) -> RuntimeResult<SimExecution> {
        run_simulated(&self.config)
    }

    /// Executes the run and builds the full report.
    pub fn run(&self) -> RuntimeResult<EnsembleReport> {
        let exec = self.execute()?;
        crate::report_builder::build_report(
            &self.label,
            &self.config.spec,
            &exec,
            self.config.n_steps,
            self.warmup,
        )
    }

    /// Executes `trials` runs with distinct seeds and returns all
    /// reports (the paper averages over five trials).
    pub fn run_trials(&self, trials: u64) -> RuntimeResult<Vec<EnsembleReport>> {
        (0..trials)
            .map(|t| {
                let mut runner = self.clone();
                runner.config.seed = self.config.seed.wrapping_add(t);
                runner.run()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemble_core::CouplingScenario;

    fn quick(id: ConfigId) -> EnsembleRunner {
        EnsembleRunner::paper_config(id).small_scale().steps(6).jitter(0.0)
    }

    #[test]
    fn report_has_expected_shape() {
        let report = quick(ConfigId::C1_5).run().unwrap();
        assert_eq!(report.config, "C1.5");
        assert_eq!(report.n, 2);
        assert_eq!(report.m, 2);
        assert_eq!(report.members.len(), 2);
        for m in &report.members {
            assert!(m.sigma_star > 0.0);
            assert!(m.efficiency > 0.0 && m.efficiency <= 1.0);
            assert!((m.cp - 1.0).abs() < 1e-12, "C1.5 members are fully co-located");
            assert_eq!(m.components.len(), 2);
            assert!(m.components[0].metrics.ipc > 0.0);
        }
        assert!(report.ensemble_makespan > 0.0);
    }

    #[test]
    fn model_makespan_close_to_measured() {
        // Eq. 2 should track the DES-measured makespan up to the
        // pipeline-drain tail (the final analysis step extends one R+A
        // past the last simulation stage), which shrinks with step count.
        let report = quick(ConfigId::Cf).steps(30).run().unwrap();
        let m = &report.members[0];
        let rel = (m.makespan_model - m.makespan).abs() / m.makespan;
        assert!(rel < 0.05, "Eq. 2 off by {rel} ({} vs {})", m.makespan_model, m.makespan);
    }

    #[test]
    fn paper_operating_point_is_idle_analyzer() {
        let report = quick(ConfigId::Cf).run().unwrap();
        assert_eq!(report.members[0].scenarios[0], CouplingScenario::IdleAnalyzer);
    }

    #[test]
    fn trials_vary_with_seed() {
        let runner = quick(ConfigId::Cf).jitter(0.05);
        let reports = runner.run_trials(3).unwrap();
        assert_eq!(reports.len(), 3);
        let makespans: Vec<f64> = reports.iter().map(|r| r.ensemble_makespan).collect();
        assert!(
            makespans.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-9),
            "different seeds should differ: {makespans:?}"
        );
    }

    #[test]
    fn ablation_toggles_apply() {
        let base = quick(ConfigId::Cc).run().unwrap();
        let no_interf = quick(ConfigId::Cc).without_interference().run().unwrap();
        // Without interference the co-located member runs at isolated
        // speed: sigma must not increase.
        assert!(no_interf.members[0].sigma_star <= base.members[0].sigma_star + 1e-9);
    }
}
