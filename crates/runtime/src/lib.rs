//! # runtime — the workflow-ensemble runtime system (paper Figure 2)
//!
//! Manages the execution of workflow ensembles in two modes producing
//! identical trace formats:
//!
//! * [`sim_exec`] — **simulated**: components run as discrete-event
//!   processes on the modeled Cori platform; compute-stage durations come
//!   from the co-location interference solver, `W`/`R` stages from the
//!   DIMES-style staging cost model. Deterministic, fast, and the mode
//!   behind every figure/table regeneration.
//! * [`thread_exec`] — **threaded**: the real Lennard-Jones MD engine and
//!   eigenvalue analysis run on OS threads, coupled through the in-memory
//!   DTL with the paper's synchronous no-overwrite protocol, measured
//!   with wall-clock time.
//!
//! [`EnsembleRunner`] is the high-level entry: pick a paper configuration
//! (or a custom spec), run it, and get the full [`metrics::EnsembleReport`]
//! with stage times, `σ̄*`, efficiency, placement indicator, makespans,
//! and Table 1 metrics.

#![warn(missing_docs)]

pub mod calibration;
pub mod diagnostics;
pub mod error;
pub mod experiment_spec;
pub mod frame_codec;
pub mod in_transit;
pub mod predictor;
pub mod report_builder;
pub mod runner;
pub mod sim_exec;
pub mod thread_exec;
pub mod workload_map;

pub use calibration::{calibrate_component, CalibratedWorkload};
pub use diagnostics::{
    diagnose, render_findings, DiagnosticConfig, Finding, FindingKind, Severity,
};
pub use error::{RuntimeError, RuntimeResult};
pub use experiment_spec::{AnalysisDesc, ExperimentSpec, MemberDesc};
pub use frame_codec::{FrameCodec, QuantizedFrameCodec};
pub use in_transit::{run_threaded_in_transit, InTransitExecution};
pub use predictor::{
    predict, predict_scores, EnsemblePrediction, MemberPrediction, ScorePrediction,
};
pub use report_builder::{build_report, build_threaded_report};
pub use runner::EnsembleRunner;
pub use sim_exec::{
    run_simulated, run_simulated_observed, CouplingMode, SimExecution, SimRunConfig,
};
pub use thread_exec::{
    run_threaded, ChaosStaging, KernelChoice, MemberOutcome, RestartPolicy, ThreadExecution,
    ThreadRunConfig,
};
pub use workload_map::WorkloadMap;
