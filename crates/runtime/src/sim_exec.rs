//! Simulated execution: runs a workflow ensemble on the modeled platform
//! with the discrete-event engine.
//!
//! Per node, the interference model solves the steady-state compute-stage
//! durations of all co-resident components; the staging cost model prices
//! the `W`/`R` stages from chunk size and data locality (DIMES: chunks
//! homed on the producer's node). The DES then plays out the synchronous
//! coupling protocol — simulations and analyses as resumable processes
//! rendezvousing through per-member [`StepProtocol`]s — and records the
//! same stage trace the threaded runtime produces, in virtual time.

use std::collections::HashMap;

use dtl::protocol::{ReaderId, StepProtocol};
use dtl::transport::StagingCostModel;
use ensemble_core::{ComponentRef, EnsembleSpec, StageKind};
use hpc_platform::{
    BindPolicy, CoreAllocation, InterferenceModel, NetworkSpec, NodeSpec, PerfEstimate,
    PlacedWorkload, Platform,
};
use metrics::{ExecutionTrace, StageInterval};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim_des::{Context, Engine, Poll, Process, RunOutcome, Signal, SimDuration};

use crate::error::{RuntimeError, RuntimeResult};
use crate::workload_map::WorkloadMap;

/// How simulations and analyses couple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CouplingMode {
    /// The paper's protocol: the simulation blocks until every analysis
    /// consumed the previous chunk (no overwrite, no loss).
    Synchronous,
    /// In-transit style: the simulation never blocks; frames enter a
    /// bounded queue and the oldest unconsumed frames are dropped when
    /// it overflows (*lost frames*, after Taufer et al. \[26\]).
    Asynchronous {
        /// Frames retained per member variable.
        queue_capacity: usize,
    },
}

/// Configuration of a simulated run.
#[derive(Debug, Clone)]
pub struct SimRunConfig {
    /// The ensemble to execute.
    pub spec: EnsembleSpec,
    /// Workload profiles per component.
    pub workloads: WorkloadMap,
    /// Node hardware description.
    pub node_spec: NodeSpec,
    /// Interconnect description.
    pub network: NetworkSpec,
    /// Contention model (set `disabled` for the interference ablation).
    pub interference: InterferenceModel,
    /// In situ steps to execute.
    pub n_steps: u64,
    /// Fractional per-step multiplicative jitter on compute stages
    /// (0 = fully deterministic; 0.02 ≈ real-machine noise).
    pub jitter: f64,
    /// RNG seed for the jitter streams.
    pub seed: u64,
    /// Socket binding policy for core allocation.
    pub bind_policy: BindPolicy,
    /// Chunks in flight per member variable (1 = the paper's unbuffered
    /// protocol; 2 = double buffering, the buffering ablation).
    pub staging_capacity: u64,
    /// Force every read to pay the remote-transfer cost even when
    /// co-located (the data-locality ablation).
    pub force_remote_reads: bool,
    /// Synchronous (paper) or asynchronous (in-transit) coupling.
    pub coupling: CouplingMode,
    /// Node power model (used when a cap is set and for energy
    /// accounting).
    pub power_model: hpc_platform::PowerModel,
    /// Per-node power cap in watts; nodes drawing more are
    /// frequency-scaled down (SeeSAw-style power-constrained runs).
    pub power_cap_watts: Option<f64>,
}

impl SimRunConfig {
    /// The paper's settings for an ensemble spec: Cori nodes, paper
    /// workloads at stride 800, 37 in situ steps (30 000 MD steps), a
    /// pinch of jitter so steady-state extraction is exercised.
    pub fn paper(spec: EnsembleSpec) -> Self {
        SimRunConfig {
            spec,
            workloads: WorkloadMap::paper_defaults(kernels::profile::PAPER_STRIDE),
            node_spec: hpc_platform::cori::cori_node(),
            network: hpc_platform::cori::aries_network(),
            interference: InterferenceModel::default(),
            n_steps: kernels::profile::PAPER_TOTAL_MD_STEPS / kernels::profile::PAPER_STRIDE,
            jitter: 0.01,
            seed: 2021,
            bind_policy: BindPolicy::Spread,
            staging_capacity: 1,
            force_remote_reads: false,
            coupling: CouplingMode::Synchronous,
            power_model: hpc_platform::PowerModel::default(),
            power_cap_watts: None,
        }
    }
}

/// Everything a simulated run produces.
#[derive(Debug, Clone)]
pub struct SimExecution {
    /// The stage trace, in virtual seconds.
    pub trace: ExecutionTrace,
    /// Solved steady-state performance per component.
    pub estimates: HashMap<ComponentRef, PerfEstimate>,
    /// Core allocations per component.
    pub allocations: HashMap<ComponentRef, CoreAllocation>,
    /// Frames dropped per member (always zero under synchronous
    /// coupling).
    pub lost_frames: Vec<u64>,
    /// Modeled steady-state power draw per node, watts (before any cap).
    pub node_power_watts: HashMap<usize, f64>,
}

/// Per-member coupling state inside the DES.
enum Coupling {
    /// The paper's synchronous protocol.
    Sync(StepProtocol),
    /// Bounded in-transit queue with drop-oldest overflow.
    Async(AsyncQueue),
}

struct AsyncQueue {
    queue: std::collections::VecDeque<u64>,
    capacity: usize,
    produced: u64,
    lost: u64,
    finished: bool,
    last_read: Vec<Option<u64>>,
}

enum FramePoll {
    /// A frame with this step is ready for the reader.
    Ready(u64),
    /// Nothing new yet; block on the member signal.
    Wait,
    /// The producer finished and nothing newer will arrive.
    End,
}

impl Coupling {
    fn may_write(&self, step: u64) -> bool {
        match self {
            Coupling::Sync(p) => p.may_write(step),
            Coupling::Async(_) => true,
        }
    }

    fn record_write(&mut self, step: u64) {
        match self {
            Coupling::Sync(p) => p.record_write(step).expect("protocol admitted the write"),
            Coupling::Async(q) => {
                if q.queue.len() >= q.capacity {
                    q.queue.pop_front();
                    q.lost += 1;
                }
                q.queue.push_back(step);
                q.produced += 1;
            }
        }
    }

    fn finish_production(&mut self) {
        if let Coupling::Async(q) = self {
            q.finished = true;
        }
    }

    fn poll_frame(&self, reader: usize, sync_next: u64, sync_total: u64) -> FramePoll {
        match self {
            Coupling::Sync(p) => {
                if sync_next >= sync_total {
                    FramePoll::End
                } else if p.may_read(ReaderId(reader as u32), sync_next) {
                    FramePoll::Ready(sync_next)
                } else {
                    FramePoll::Wait
                }
            }
            Coupling::Async(q) => {
                let last = q.last_read[reader];
                match q.queue.iter().find(|&&s| last.is_none_or(|l| s > l)) {
                    Some(&s) => FramePoll::Ready(s),
                    None if q.finished => FramePoll::End,
                    None => FramePoll::Wait,
                }
            }
        }
    }

    fn record_read(&mut self, reader: usize, step: u64) {
        match self {
            Coupling::Sync(p) => {
                p.record_read(ReaderId(reader as u32), step).expect("protocol admitted the read")
            }
            Coupling::Async(q) => {
                q.last_read[reader] = Some(step);
                if q.last_read.iter().all(Option::is_some) {
                    let min_last =
                        q.last_read.iter().map(|v| v.expect("checked")).min().expect("non-empty");
                    while q.queue.front().is_some_and(|&s| s <= min_last) {
                        q.queue.pop_front();
                    }
                }
            }
        }
    }

    fn lost(&self) -> u64 {
        match self {
            Coupling::Sync(_) => 0,
            Coupling::Async(q) => q.lost,
        }
    }
}

struct SimState<'a> {
    couplings: Vec<Coupling>,
    intervals: Vec<StageInterval>,
    /// Fired each time a member's simulation finishes writing a step
    /// (`(member index, steps completed)`), in virtual-time order. The
    /// no-op default keeps [`run_simulated`] allocation-free; the
    /// provisioning service threads a progress forwarder through
    /// [`run_simulated_observed`].
    on_step: &'a mut dyn FnMut(usize, u64),
}

fn signal_of(member: usize) -> Signal {
    Signal(member as u64)
}

enum SimPhase {
    StartStep,
    Computing,
    WaitingSlot,
    Writing,
}

/// The simulation-side process of one member.
struct SimProc {
    member: usize,
    steps: u64,
    step: u64,
    phase: SimPhase,
    compute_secs: Vec<f64>,
    write_secs: f64,
    stage_started: f64,
    idle_started: f64,
}

impl<'a> Process<SimState<'a>> for SimProc {
    fn poll(&mut self, state: &mut SimState<'a>, ctx: &mut Context) -> Poll {
        let now = ctx.now().as_secs_f64();
        let me = ComponentRef::simulation(self.member);
        loop {
            match self.phase {
                SimPhase::StartStep => {
                    if self.step >= self.steps {
                        state.couplings[self.member].finish_production();
                        ctx.emit(signal_of(self.member));
                        return Poll::Done;
                    }
                    self.stage_started = now;
                    self.phase = SimPhase::Computing;
                    return Poll::Sleep(SimDuration::from_secs_f64(
                        self.compute_secs[self.step as usize],
                    ));
                }
                SimPhase::Computing => {
                    state.intervals.push(StageInterval {
                        component: me,
                        kind: StageKind::Simulate,
                        step: self.step,
                        start: self.stage_started,
                        end: now,
                    });
                    if state.couplings[self.member].may_write(self.step) {
                        self.stage_started = now;
                        self.phase = SimPhase::Writing;
                        return Poll::Sleep(SimDuration::from_secs_f64(self.write_secs));
                    }
                    self.idle_started = now;
                    self.phase = SimPhase::WaitingSlot;
                    return Poll::WaitSignal(signal_of(self.member));
                }
                SimPhase::WaitingSlot => {
                    if state.couplings[self.member].may_write(self.step) {
                        state.intervals.push(StageInterval {
                            component: me,
                            kind: StageKind::SimIdle,
                            step: self.step,
                            start: self.idle_started,
                            end: now,
                        });
                        self.stage_started = now;
                        self.phase = SimPhase::Writing;
                        return Poll::Sleep(SimDuration::from_secs_f64(self.write_secs));
                    }
                    return Poll::WaitSignal(signal_of(self.member));
                }
                SimPhase::Writing => {
                    state.intervals.push(StageInterval {
                        component: me,
                        kind: StageKind::Write,
                        step: self.step,
                        start: self.stage_started,
                        end: now,
                    });
                    state.couplings[self.member].record_write(self.step);
                    ctx.emit(signal_of(self.member));
                    self.step += 1;
                    (state.on_step)(self.member, self.step);
                    self.phase = SimPhase::StartStep;
                    // Loop: start the next step at the current instant.
                }
            }
        }
    }

    fn name(&self) -> &str {
        "simulation"
    }
}

enum AnaPhase {
    StartStep,
    WaitingData,
    Reading,
    Analyzing,
}

/// One analysis-side process. Under synchronous coupling it consumes
/// exactly `total_frames` frames in step order; under asynchronous
/// coupling it consumes whatever survives the queue until the producer
/// finishes.
struct AnaProc {
    member: usize,
    slot: usize,
    reader: usize,
    total_frames: u64,
    consumed: u64,
    current_frame: u64,
    phase: AnaPhase,
    read_secs: f64,
    compute_secs: Vec<f64>,
    stage_started: f64,
    idle_started: f64,
}

impl<'a> Process<SimState<'a>> for AnaProc {
    fn poll(&mut self, state: &mut SimState<'a>, ctx: &mut Context) -> Poll {
        let now = ctx.now().as_secs_f64();
        let me = ComponentRef::analysis(self.member, self.slot);
        loop {
            match self.phase {
                AnaPhase::StartStep => {
                    match state.couplings[self.member].poll_frame(
                        self.reader,
                        self.consumed,
                        self.total_frames,
                    ) {
                        FramePoll::End => return Poll::Done,
                        FramePoll::Ready(frame) => {
                            self.current_frame = frame;
                            self.stage_started = now;
                            self.phase = AnaPhase::Reading;
                            return Poll::Sleep(SimDuration::from_secs_f64(self.read_secs));
                        }
                        FramePoll::Wait => {
                            self.idle_started = now;
                            self.phase = AnaPhase::WaitingData;
                            return Poll::WaitSignal(signal_of(self.member));
                        }
                    }
                }
                AnaPhase::WaitingData => {
                    match state.couplings[self.member].poll_frame(
                        self.reader,
                        self.consumed,
                        self.total_frames,
                    ) {
                        FramePoll::End => return Poll::Done,
                        FramePoll::Ready(frame) => {
                            // The wait for data is the analysis idle
                            // stage (paper: Iᴬ), recorded against the
                            // frame it awaited.
                            state.intervals.push(StageInterval {
                                component: me,
                                kind: StageKind::AnaIdle,
                                step: frame,
                                start: self.idle_started,
                                end: now,
                            });
                            self.current_frame = frame;
                            self.stage_started = now;
                            self.phase = AnaPhase::Reading;
                            return Poll::Sleep(SimDuration::from_secs_f64(self.read_secs));
                        }
                        FramePoll::Wait => return Poll::WaitSignal(signal_of(self.member)),
                    }
                }
                AnaPhase::Reading => {
                    state.intervals.push(StageInterval {
                        component: me,
                        kind: StageKind::Read,
                        step: self.current_frame,
                        start: self.stage_started,
                        end: now,
                    });
                    // The slot is released only when the read completes,
                    // preserving Wᵢ ≺ Rᵢ ≺ Wᵢ₊₁ under synchronous
                    // coupling.
                    state.couplings[self.member].record_read(self.reader, self.current_frame);
                    ctx.emit(signal_of(self.member));
                    self.stage_started = now;
                    self.phase = AnaPhase::Analyzing;
                    let idx = (self.consumed as usize).min(self.compute_secs.len() - 1);
                    return Poll::Sleep(SimDuration::from_secs_f64(self.compute_secs[idx]));
                }
                AnaPhase::Analyzing => {
                    state.intervals.push(StageInterval {
                        component: me,
                        kind: StageKind::Analyze,
                        step: self.current_frame,
                        start: self.stage_started,
                        end: now,
                    });
                    self.consumed += 1;
                    self.phase = AnaPhase::StartStep;
                }
            }
        }
    }

    fn name(&self) -> &str {
        "analysis"
    }
}

fn jittered(base: f64, steps: u64, jitter: f64, rng: &mut StdRng) -> Vec<f64> {
    (0..steps)
        .map(
            |_| {
                if jitter <= 0.0 {
                    base
                } else {
                    base * (1.0 + rng.random_range(-jitter..=jitter))
                }
            },
        )
        .collect()
}

/// Runs the ensemble on the simulated platform.
pub fn run_simulated(cfg: &SimRunConfig) -> RuntimeResult<SimExecution> {
    run_simulated_observed(cfg, &mut |_, _| {})
}

/// [`run_simulated`] with a per-step observer: `on_step(member, done)`
/// fires each time member `member`'s simulation completes writing a
/// step (`done` = steps completed so far), in virtual-time order. The
/// observer runs inside the DES loop — keep it cheap. Observed and
/// unobserved runs are bit-identical: the hook only reads progress.
pub fn run_simulated_observed(
    cfg: &SimRunConfig,
    on_step: &mut dyn FnMut(usize, u64),
) -> RuntimeResult<SimExecution> {
    cfg.spec.validate(Some(cfg.node_spec.cores_per_node()))?;
    if cfg.n_steps == 0 {
        return Err(RuntimeError::NoSamples);
    }

    // --- Placement: allocate cores for every component. ---
    let num_nodes = cfg.spec.node_set().iter().copied().max().map_or(0, |m| m + 1);
    let mut platform = Platform::new(num_nodes, cfg.node_spec.clone(), cfg.network.clone());
    let mut allocations: HashMap<ComponentRef, CoreAllocation> = HashMap::new();
    let mut component_node: HashMap<ComponentRef, usize> = HashMap::new();
    for (i, member) in cfg.spec.members.iter().enumerate() {
        let components = std::iter::once((ComponentRef::simulation(i), &member.simulation)).chain(
            member.analyses.iter().enumerate().map(|(j, a)| (ComponentRef::analysis(i, j + 1), a)),
        );
        for (cref, comp) in components {
            if comp.nodes.len() != 1 {
                return Err(RuntimeError::MultiNodeComponent { component: cref.to_string() });
            }
            let node = *comp.nodes.iter().next().expect("validated non-empty");
            let alloc = platform.allocate(node, comp.cores, cfg.bind_policy)?;
            allocations.insert(cref, alloc);
            component_node.insert(cref, node);
        }
    }

    // --- Contention: solve the steady state per node. ---
    let mut by_node: HashMap<usize, Vec<(ComponentRef, PlacedWorkload)>> = HashMap::new();
    for (cref, workload) in cfg.workloads.assignments(&cfg.spec) {
        let alloc = allocations[&cref].clone();
        by_node.entry(alloc.node).or_default().push((cref, PlacedWorkload { alloc, workload }));
    }
    let mut estimates: HashMap<ComponentRef, PerfEstimate> = HashMap::new();
    for placed in by_node.values() {
        let workloads: Vec<PlacedWorkload> = placed.iter().map(|(_, p)| p.clone()).collect();
        let solved = cfg.interference.solve_node(&cfg.node_spec, &workloads, &[]);
        for ((cref, _), est) in placed.iter().zip(solved) {
            estimates.insert(*cref, est);
        }
    }

    // --- Power draw per node; apply the cap as a DVFS slowdown. ---
    let mut node_power_watts: HashMap<usize, f64> = HashMap::new();
    for (&node, placed) in &by_node {
        let busy_cores: u32 = placed.iter().map(|(_, p)| p.alloc.total_cores()).sum();
        let traffic: f64 = placed
            .iter()
            .map(|(cref, _)| {
                let est = &estimates[cref];
                est.dram_bytes_per_step / est.seconds_per_step.max(f64::MIN_POSITIVE)
            })
            .sum();
        let draw = cfg.power_model.node_watts(busy_cores, traffic);
        node_power_watts.insert(node, draw);
        if let Some(cap) = cfg.power_cap_watts {
            let slowdown = cfg.power_model.cap_slowdown(draw, cap);
            if slowdown > 1.0 {
                for (cref, _) in placed {
                    estimates.get_mut(cref).expect("solved above").seconds_per_step *= slowdown;
                }
            }
        }
    }

    // --- Staging costs (W/R stages) from locality. ---
    let cost = StagingCostModel::from_platform(&cfg.node_spec, &cfg.network);
    let chunk = cfg.workloads.chunk_bytes;

    // --- Build the DES processes. ---
    let state = SimState {
        couplings: cfg
            .spec
            .members
            .iter()
            .map(|m| match cfg.coupling {
                CouplingMode::Synchronous => {
                    Coupling::Sync(StepProtocol::new(m.k() as u32, cfg.staging_capacity))
                }
                CouplingMode::Asynchronous { queue_capacity } => Coupling::Async(AsyncQueue {
                    queue: std::collections::VecDeque::new(),
                    capacity: queue_capacity.max(1),
                    produced: 0,
                    lost: 0,
                    finished: false,
                    last_read: vec![None; m.k()],
                }),
            })
            .collect(),
        intervals: Vec::new(),
        on_step,
    };
    let mut engine = Engine::new(state);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    for (i, member) in cfg.spec.members.iter().enumerate() {
        let sim_ref = ComponentRef::simulation(i);
        let sim_node = component_node[&sim_ref];
        let sim_est = &estimates[&sim_ref];
        engine.spawn(Box::new(SimProc {
            member: i,
            steps: cfg.n_steps,
            step: 0,
            phase: SimPhase::StartStep,
            compute_secs: jittered(sim_est.seconds_per_step, cfg.n_steps, cfg.jitter, &mut rng),
            write_secs: cost.write_seconds(chunk, sim_node, sim_node),
            stage_started: 0.0,
            idle_started: 0.0,
        }));
        for j in 1..=member.k() {
            let ana_ref = ComponentRef::analysis(i, j);
            let ana_node = component_node[&ana_ref];
            let ana_est = &estimates[&ana_ref];
            let read_secs = if cfg.force_remote_reads && ana_node == sim_node {
                // Locality ablation: price the read as if one hop away.
                cost.read_seconds(chunk, sim_node, sim_node + 1)
            } else {
                cost.read_seconds(chunk, sim_node, ana_node)
            };
            engine.spawn(Box::new(AnaProc {
                member: i,
                slot: j,
                reader: j - 1,
                total_frames: cfg.n_steps,
                consumed: 0,
                current_frame: 0,
                phase: AnaPhase::StartStep,
                read_secs,
                compute_secs: jittered(ana_est.seconds_per_step, cfg.n_steps, cfg.jitter, &mut rng),
                stage_started: 0.0,
                idle_started: 0.0,
            }));
        }
    }

    // Livelock guard: each component needs a handful of events per step.
    let components: u64 = cfg.spec.members.iter().map(|m| 1 + m.k() as u64).sum();
    engine.set_event_budget(components * cfg.n_steps * 16 + 10_000);
    let outcome = engine.run();
    debug_assert_eq!(outcome, RunOutcome::Quiescent, "simulated run did not drain");
    assert!(engine.all_finished(), "some components did not complete all steps");

    let state = engine.into_state();
    let lost_frames: Vec<u64> = state.couplings.iter().map(Coupling::lost).collect();
    Ok(SimExecution {
        trace: ExecutionTrace::new(state.intervals),
        estimates,
        allocations,
        lost_frames,
        node_power_watts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemble_core::ConfigId;

    fn quick_config(id: ConfigId) -> SimRunConfig {
        let mut cfg = SimRunConfig::paper(id.build());
        cfg.workloads = WorkloadMap::small_defaults();
        cfg.n_steps = 6;
        cfg.jitter = 0.0;
        cfg
    }

    #[test]
    fn run_produces_complete_trace() {
        let cfg = quick_config(ConfigId::Cf);
        let exec = run_simulated(&cfg).unwrap();
        let sim = ComponentRef::simulation(0);
        let ana = ComponentRef::analysis(0, 1);
        assert_eq!(exec.trace.stage_series(sim, StageKind::Simulate).len(), 6);
        assert_eq!(exec.trace.stage_series(sim, StageKind::Write).len(), 6);
        assert_eq!(exec.trace.stage_series(ana, StageKind::Read).len(), 6);
        assert_eq!(exec.trace.stage_series(ana, StageKind::Analyze).len(), 6);
        assert!(exec.estimates.contains_key(&sim));
        assert!(exec.allocations[&sim].total_cores() == 16);
    }

    #[test]
    fn step_observer_reports_every_member_step_in_order() {
        let cfg = quick_config(ConfigId::C1_5);
        let mut seen: Vec<(usize, u64)> = Vec::new();
        let observed = run_simulated_observed(&cfg, &mut |member, done| {
            seen.push((member, done));
        })
        .unwrap();
        let members = cfg.spec.members.len();
        assert_eq!(seen.len(), members * cfg.n_steps as usize);
        // Per member: exactly n_steps reports, counting 1..=n_steps.
        for m in 0..members {
            let counts: Vec<u64> =
                seen.iter().filter(|(mem, _)| *mem == m).map(|(_, d)| *d).collect();
            assert_eq!(counts, (1..=cfg.n_steps).collect::<Vec<_>>(), "member {m}");
        }
        // Observation must not perturb the run: bit-identical trace.
        let plain = run_simulated(&cfg).unwrap();
        assert_eq!(plain.trace.intervals().len(), observed.trace.intervals().len());
        for (a, b) in plain.trace.intervals().iter().zip(observed.trace.intervals()) {
            assert_eq!(a.start.to_bits(), b.start.to_bits());
            assert_eq!(a.end.to_bits(), b.end.to_bits());
        }
    }

    #[test]
    fn protocol_interleaving_visible_in_trace() {
        let cfg = quick_config(ConfigId::Cf);
        let exec = run_simulated(&cfg).unwrap();
        let sim = ComponentRef::simulation(0);
        let ana = ComponentRef::analysis(0, 1);
        // Every read of step i starts after the write of step i ends and
        // before the write of step i+1 starts.
        let writes: Vec<&StageInterval> =
            exec.trace.for_component(sim).filter(|iv| iv.kind == StageKind::Write).collect();
        let reads: Vec<&StageInterval> =
            exec.trace.for_component(ana).filter(|iv| iv.kind == StageKind::Read).collect();
        for i in 0..reads.len() {
            assert!(reads[i].start >= writes[i].end - 1e-12, "R{i} before W{i} finished");
            if i + 1 < writes.len() {
                assert!(
                    writes[i + 1].start >= reads[i].end - 1e-12,
                    "W{} started before R{i} finished (no-overwrite violated)",
                    i + 1
                );
            }
        }
    }

    #[test]
    fn deterministic_without_jitter() {
        let cfg = quick_config(ConfigId::C1_5);
        let a = run_simulated(&cfg).unwrap();
        let b = run_simulated(&cfg).unwrap();
        assert_eq!(a.trace.intervals(), b.trace.intervals());
    }

    #[test]
    fn jitter_changes_per_step_durations_but_not_counts() {
        let mut cfg = quick_config(ConfigId::Cf);
        cfg.jitter = 0.05;
        let exec = run_simulated(&cfg).unwrap();
        let s = exec.trace.stage_series(ComponentRef::simulation(0), StageKind::Simulate);
        assert_eq!(s.len(), 6);
        let spread = s.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - s.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 0.0, "jitter must vary step durations");
    }

    #[test]
    fn all_members_run_in_two_member_configs() {
        let cfg = quick_config(ConfigId::C1_4);
        let exec = run_simulated(&cfg).unwrap();
        assert_eq!(exec.trace.member_indexes(), vec![0, 1]);
    }

    #[test]
    fn zero_steps_rejected() {
        let mut cfg = quick_config(ConfigId::Cf);
        cfg.n_steps = 0;
        assert!(matches!(run_simulated(&cfg), Err(RuntimeError::NoSamples)));
    }

    #[test]
    fn double_buffering_shortens_waits() {
        // With capacity 2 the simulation never blocks on a slow analysis
        // as long as it stays one step ahead.
        let mut unbuffered = quick_config(ConfigId::Cf);
        // Make the analysis slower than the simulation so the sim idles.
        let mut slow = unbuffered.workloads.workload_for(ComponentRef::analysis(0, 1)).clone();
        slow.instructions_per_step *= 3.0;
        unbuffered.workloads.set_override(ComponentRef::analysis(0, 1), slow.clone());
        let mut buffered = unbuffered.clone();
        buffered.staging_capacity = 2;

        let u = run_simulated(&unbuffered).unwrap();
        let b = run_simulated(&buffered).unwrap();
        let sim = ComponentRef::simulation(0);
        let idle_u = u.trace.total_in_stage(sim, StageKind::SimIdle);
        let idle_b = b.trace.total_in_stage(sim, StageKind::SimIdle);
        assert!(idle_b < idle_u, "buffering should reduce sim idle ({idle_b} vs {idle_u})");
    }

    #[test]
    fn async_coupling_never_stalls_the_simulation() {
        // Make the analysis 3x slower than the simulation: synchronous
        // coupling stalls the sim; asynchronous coupling must not, at
        // the price of lost frames.
        let mut sync_cfg = quick_config(ConfigId::Cf);
        let mut slow = sync_cfg.workloads.workload_for(ComponentRef::analysis(0, 1)).clone();
        slow.instructions_per_step *= 3.0;
        sync_cfg.workloads.set_override(ComponentRef::analysis(0, 1), slow);
        sync_cfg.n_steps = 10;
        let mut async_cfg = sync_cfg.clone();
        async_cfg.coupling = CouplingMode::Asynchronous { queue_capacity: 1 };

        let sync_exec = run_simulated(&sync_cfg).unwrap();
        let async_exec = run_simulated(&async_cfg).unwrap();

        let sim = ComponentRef::simulation(0);
        let sync_idle = sync_exec.trace.total_in_stage(sim, StageKind::SimIdle);
        let async_idle = async_exec.trace.total_in_stage(sim, StageKind::SimIdle);
        assert!(sync_idle > 0.0, "sync coupling must stall the sim");
        assert_eq!(async_idle, 0.0, "async coupling must never stall the sim");

        // Frames are conserved: consumed + lost = produced.
        let consumed =
            async_exec.trace.stage_series(ComponentRef::analysis(0, 1), StageKind::Analyze).len()
                as u64;
        assert_eq!(consumed + async_exec.lost_frames[0], 10);
        assert!(async_exec.lost_frames[0] > 0, "slow analysis must lose frames");

        // And the sync run loses nothing.
        assert_eq!(sync_exec.lost_frames, vec![0]);
    }

    #[test]
    fn async_fast_analysis_loses_nothing() {
        let mut cfg = quick_config(ConfigId::Cf);
        cfg.coupling = CouplingMode::Asynchronous { queue_capacity: 2 };
        let exec = run_simulated(&cfg).unwrap();
        assert_eq!(exec.lost_frames, vec![0]);
        let consumed =
            exec.trace.stage_series(ComponentRef::analysis(0, 1), StageKind::Analyze).len();
        assert_eq!(consumed, 6);
    }

    #[test]
    fn async_frames_arrive_in_order_without_repeats() {
        let mut cfg = quick_config(ConfigId::Cf);
        let mut slow = cfg.workloads.workload_for(ComponentRef::analysis(0, 1)).clone();
        slow.instructions_per_step *= 2.5;
        cfg.workloads.set_override(ComponentRef::analysis(0, 1), slow);
        cfg.coupling = CouplingMode::Asynchronous { queue_capacity: 1 };
        cfg.n_steps = 12;
        let exec = run_simulated(&cfg).unwrap();
        let mut steps: Vec<u64> = exec
            .trace
            .for_component(ComponentRef::analysis(0, 1))
            .filter(|iv| iv.kind == StageKind::Analyze)
            .map(|iv| iv.step)
            .collect();
        let sorted = steps.clone();
        steps.dedup();
        assert_eq!(steps, sorted, "frame steps must be strictly increasing");
    }

    #[test]
    fn forced_remote_reads_slow_colocated_members() {
        let local = quick_config(ConfigId::Cc);
        let mut remote = local.clone();
        remote.force_remote_reads = true;
        let l = run_simulated(&local).unwrap();
        let r = run_simulated(&remote).unwrap();
        let ana = ComponentRef::analysis(0, 1);
        let read_l: f64 = l.trace.stage_series(ana, StageKind::Read).iter().sum();
        let read_r: f64 = r.trace.stage_series(ana, StageKind::Read).iter().sum();
        assert!(read_r > read_l, "remote reads must cost more ({read_r} vs {read_l})");
    }
}
