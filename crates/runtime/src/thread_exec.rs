//! Threaded execution: the runtime actually runs the kernels.
//!
//! Each member's simulation is a real Lennard-Jones MD engine producing
//! frames every stride; each analysis is the real bipartite-eigenvalue
//! kernel. Components run on OS threads and couple through the in-memory
//! DTL with the paper's synchronous protocol. Stage boundaries are
//! measured with wall-clock time and recorded in the same trace format
//! as the simulated mode.
//!
//! Members couple through *disjoint* variables, and the staging area is
//! sharded per variable: each member's writer/reader threads only ever
//! take their own variable's lock, so members never serialize on the
//! DTL and the measured idle stages reflect the coupling protocol, not
//! lock contention.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dtl::protocol::ReaderId;
use dtl::staging::{InMemoryStaging, StagingStats};
use dtl::{DtlReader, VariableSpec};
use ensemble_core::{ComponentRef, EnsembleSpec, StageKind};
use kernels::analysis::{
    ContactCount, EigenAnalysis, FrameKernel, MsdKernel, RadiusOfGyration, RmsdKernel,
};
use kernels::md::{MdConfig, MdSimulation};
use metrics::{ExecutionTrace, TraceRecorder};

use crate::error::{RuntimeError, RuntimeResult};
use crate::frame_codec::FrameCodec;

/// Which in situ analysis kernel the threaded runtimes couple to each
/// simulation (paper §2.2: the chunk contract is kernel-agnostic).
#[derive(Debug, Clone, PartialEq)]
pub enum KernelChoice {
    /// The paper's bipartite-eigenvalue collective variable.
    Eigen {
        /// Bipartite group size.
        group: usize,
        /// Gaussian contact width.
        sigma: f64,
    },
    /// RMSD against the first frame.
    Rmsd,
    /// Radius of gyration.
    RadiusOfGyration,
    /// Contact count between interleaved groups.
    ContactCount {
        /// Group size.
        group: usize,
        /// Contact cutoff distance.
        cutoff: f64,
    },
    /// Mean-squared displacement (stateful, unwrapped).
    Msd,
}

impl KernelChoice {
    /// Instantiates the kernel for a system of `atoms` atoms.
    pub fn build(&self, atoms: usize) -> Box<dyn FrameKernel> {
        match *self {
            KernelChoice::Eigen { group, sigma } => {
                Box::new(EigenAnalysis::interleaved(atoms, group, sigma))
            }
            KernelChoice::Rmsd => Box::new(RmsdKernel::from_first_frame()),
            KernelChoice::RadiusOfGyration => Box::new(RadiusOfGyration),
            KernelChoice::ContactCount { group, cutoff } => {
                Box::new(ContactCount::interleaved(atoms, group, cutoff))
            }
            KernelChoice::Msd => Box::new(MsdKernel::new()),
        }
    }
}

/// Configuration of a threaded (real-kernel) run.
#[derive(Debug, Clone)]
pub struct ThreadRunConfig {
    /// Ensemble structure (placements are honoured for data homing;
    /// cores are not pinned — threads share the host).
    pub spec: EnsembleSpec,
    /// MD settings for every simulation (the seed is offset per member
    /// so trajectories differ).
    pub md: MdConfig,
    /// Bipartite group size for the eigen analysis.
    pub analysis_group_size: usize,
    /// Gaussian contact width of the analysis.
    pub analysis_sigma: f64,
    /// In situ steps (frames) to execute.
    pub n_steps: u64,
    /// Chunks in flight per member variable (1 = paper semantics).
    pub staging_capacity: u64,
    /// Per-operation timeout.
    pub timeout: Duration,
    /// Analysis kernel; `None` uses the paper's eigenvalue kernel with
    /// `analysis_group_size` / `analysis_sigma`.
    pub kernel: Option<KernelChoice>,
}

impl Default for ThreadRunConfig {
    fn default() -> Self {
        ThreadRunConfig {
            spec: ensemble_core::ConfigId::Cc.build(),
            md: MdConfig::default(),
            analysis_group_size: 64,
            analysis_sigma: 1.2,
            n_steps: 4,
            staging_capacity: 1,
            timeout: Duration::from_secs(120),
            kernel: None,
        }
    }
}

/// What a threaded run produces.
#[derive(Debug)]
pub struct ThreadExecution {
    /// Stage trace in wall-clock seconds from run start.
    pub trace: ExecutionTrace,
    /// Collective-variable series per analysis component.
    pub cv_series: HashMap<ComponentRef, Vec<f64>>,
    /// DTL operation counters.
    pub staging_stats: StagingStats,
}

/// Runs the ensemble with real kernels on real threads.
pub fn run_threaded(cfg: &ThreadRunConfig) -> RuntimeResult<ThreadExecution> {
    cfg.spec.validate(None)?;
    if cfg.n_steps == 0 {
        return Err(RuntimeError::NoSamples);
    }
    let staging = Arc::new(dtl::staging::burst_buffer(cfg.staging_capacity));
    let recorder = TraceRecorder::new();
    let epoch = Instant::now();

    // Register one variable per member up front (single registration
    // point avoids writer/reader races).
    let mut variables = Vec::with_capacity(cfg.spec.members.len());
    for (i, member) in cfg.spec.members.iter().enumerate() {
        let home_node = *member.simulation.nodes.iter().next().ok_or_else(|| {
            RuntimeError::Model(ensemble_core::ModelError::EmptyNodeSet {
                member: i,
                component: "simulation".into(),
            })
        })?;
        let var = staging.register(VariableSpec {
            name: format!("trajectory/member{i}"),
            expected_readers: member.k() as u32,
            home_node,
        })?;
        variables.push(var);
    }

    let mut cv_series: HashMap<ComponentRef, Vec<f64>> = HashMap::new();
    let result: RuntimeResult<Vec<(ComponentRef, Vec<f64>)>> = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, member) in cfg.spec.members.iter().enumerate() {
            // --- Simulation worker. ---
            let var = variables[i];
            let staging_w = Arc::clone(&staging);
            let recorder_w = recorder.clone();
            let mut md_cfg = cfg.md.clone();
            md_cfg.seed = cfg.md.seed.wrapping_add(i as u64);
            let n_steps = cfg.n_steps;
            let timeout = cfg.timeout;
            let home_node = *member.simulation.nodes.iter().next().expect("validated");
            let sim_ref = ComponentRef::simulation(i);
            handles.push((
                sim_ref,
                scope.spawn(move |_| -> RuntimeResult<Vec<f64>> {
                    let mut sim = MdSimulation::new(&md_cfg);
                    let mut step_writer =
                        ManualWriter { staging: staging_w, var, home_node, timeout };
                    for step in 0..n_steps {
                        let t0 = epoch.elapsed().as_secs_f64();
                        let frame = sim.advance_stride();
                        let t1 = epoch.elapsed().as_secs_f64();
                        recorder_w.record(sim_ref, StageKind::Simulate, step, t0, t1);
                        step_writer.wait_slot(step)?;
                        let t2 = epoch.elapsed().as_secs_f64();
                        if t2 > t1 {
                            recorder_w.record(sim_ref, StageKind::SimIdle, step, t1, t2);
                        }
                        step_writer.write(step, &frame)?;
                        let t3 = epoch.elapsed().as_secs_f64();
                        recorder_w.record(sim_ref, StageKind::Write, step, t2, t3);
                    }
                    Ok(Vec::new())
                }),
            ));

            // --- Analysis workers. ---
            for j in 1..=member.k() {
                let ana_ref = ComponentRef::analysis(i, j);
                let staging_r = Arc::clone(&staging);
                let recorder_r = recorder.clone();
                let n_steps = cfg.n_steps;
                let timeout = cfg.timeout;
                let choice = cfg.kernel.clone().unwrap_or(KernelChoice::Eigen {
                    group: cfg.analysis_group_size,
                    sigma: cfg.analysis_sigma,
                });
                let var = variables[i];
                handles.push((
                    ana_ref,
                    scope.spawn(move |_| -> RuntimeResult<Vec<f64>> {
                        let reader_id = ReaderId(j as u32 - 1);
                        let mut reader =
                            DtlReader::attach(Arc::clone(&staging_r), FrameCodec, var, reader_id);
                        reader.set_timeout(timeout);
                        let mut analysis: Option<Box<dyn FrameKernel>> = None;
                        let mut cvs = Vec::with_capacity(n_steps as usize);
                        for step in 0..n_steps {
                            let t0 = epoch.elapsed().as_secs_f64();
                            staging_r.wait_readable(var, step, reader_id, timeout)?;
                            let t1 = epoch.elapsed().as_secs_f64();
                            if t1 > t0 {
                                recorder_r.record(ana_ref, StageKind::AnaIdle, step, t0, t1);
                            }
                            let frame = reader.read()?;
                            let t2 = epoch.elapsed().as_secs_f64();
                            recorder_r.record(ana_ref, StageKind::Read, step, t1, t2);
                            let kernel =
                                analysis.get_or_insert_with(|| choice.build(frame.num_atoms()));
                            let cv = kernel.compute(&frame);
                            let t3 = epoch.elapsed().as_secs_f64();
                            recorder_r.record(ana_ref, StageKind::Analyze, step, t2, t3);
                            cvs.push(cv);
                        }
                        Ok(cvs)
                    }),
                ));
            }
        }
        let mut collected = Vec::new();
        for (cref, handle) in handles {
            match handle.join() {
                Ok(Ok(cvs)) => collected.push((cref, cvs)),
                Ok(Err(e)) => return Err(e),
                Err(_) => return Err(RuntimeError::WorkerPanicked { component: cref.to_string() }),
            }
        }
        Ok(collected)
    })
    .map_err(|_| RuntimeError::WorkerPanicked { component: "scope".into() })?;

    let collected = result?;
    for (cref, cvs) in collected {
        if !cref.is_simulation() {
            cv_series.insert(cref, cvs);
        }
    }
    staging.close();
    Ok(ThreadExecution { trace: recorder.into_trace(), cv_series, staging_stats: staging.stats() })
}

/// Minimal writer used by the simulation worker: the variable is
/// pre-registered, so it stages chunks directly.
struct ManualWriter {
    staging: Arc<InMemoryStaging>,
    var: dtl::VariableId,
    home_node: usize,
    timeout: Duration,
}

impl ManualWriter {
    fn wait_slot(&self, step: u64) -> RuntimeResult<()> {
        self.staging.wait_writable(self.var, step, self.timeout)?;
        Ok(())
    }

    fn write(&mut self, step: u64, frame: &kernels::md::Frame) -> RuntimeResult<()> {
        let chunk =
            dtl::Chunk::new(self.var, step, self.home_node, "md-frame-v1", frame.to_bytes());
        self.staging.put_timeout(chunk, self.timeout)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemble_core::ConfigId;

    fn quick(spec: ensemble_core::EnsembleSpec, steps: u64) -> ThreadRunConfig {
        ThreadRunConfig {
            spec,
            md: MdConfig { atoms_per_side: 5, stride: 10, ..Default::default() },
            analysis_group_size: 32,
            analysis_sigma: 1.2,
            n_steps: steps,
            staging_capacity: 1,
            timeout: Duration::from_secs(60),
            kernel: None,
        }
    }

    #[test]
    fn single_member_end_to_end() {
        let exec = run_threaded(&quick(ConfigId::Cc.build(), 3)).unwrap();
        let sim = ComponentRef::simulation(0);
        let ana = ComponentRef::analysis(0, 1);
        assert_eq!(exec.trace.stage_series(sim, StageKind::Simulate).len(), 3);
        assert_eq!(exec.trace.stage_series(ana, StageKind::Analyze).len(), 3);
        let cvs = &exec.cv_series[&ana];
        assert_eq!(cvs.len(), 3);
        assert!(cvs.iter().all(|v| *v > 0.0 && v.is_finite()));
        assert_eq!(exec.staging_stats.puts, 3);
        assert_eq!(exec.staging_stats.gets, 3);
    }

    #[test]
    fn two_members_run_concurrently() {
        let exec = run_threaded(&quick(ConfigId::C1_5.build(), 2)).unwrap();
        assert_eq!(exec.trace.member_indexes(), vec![0, 1]);
        assert_eq!(exec.staging_stats.puts, 4);
        // Trajectories differ across members (different seeds) ⇒ CVs
        // differ.
        let a = &exec.cv_series[&ComponentRef::analysis(0, 1)];
        let b = &exec.cv_series[&ComponentRef::analysis(1, 1)];
        assert_ne!(a, b);
    }

    #[test]
    fn two_analyses_share_frames() {
        // A member with two analyses: both read every frame; CVs match
        // because the kernels are identical.
        let spec = ensemble_core::EnsembleSpec::new(vec![ensemble_core::MemberSpec::new(
            ensemble_core::ComponentSpec::simulation(16, 0),
            vec![
                ensemble_core::ComponentSpec::analysis(8, 0),
                ensemble_core::ComponentSpec::analysis(8, 0),
            ],
        )]);
        let exec = run_threaded(&quick(spec, 2)).unwrap();
        let a = &exec.cv_series[&ComponentRef::analysis(0, 1)];
        let b = &exec.cv_series[&ComponentRef::analysis(0, 2)];
        assert_eq!(a, b, "identical kernels over identical frames");
        assert_eq!(exec.staging_stats.gets, 4, "2 steps × 2 readers");
    }

    #[test]
    fn alternative_kernels_run_through_the_runtime() {
        // RMSD against the first frame: the first CV is exactly 0 and
        // later ones grow as the system diffuses.
        let mut cfg = quick(ConfigId::Cc.build(), 4);
        cfg.kernel = Some(KernelChoice::Rmsd);
        let exec = run_threaded(&cfg).unwrap();
        let cvs = &exec.cv_series[&ComponentRef::analysis(0, 1)];
        assert_eq!(cvs[0], 0.0, "first frame is its own reference");
        assert!(cvs[1..].iter().all(|v| *v > 0.0));

        // The stateful MSD kernel also works (monotone from zero for a
        // diffusing fluid over a short horizon).
        let mut cfg = quick(ConfigId::Cc.build(), 4);
        cfg.kernel = Some(KernelChoice::Msd);
        let exec = run_threaded(&cfg).unwrap();
        let cvs = &exec.cv_series[&ComponentRef::analysis(0, 1)];
        assert_eq!(cvs[0], 0.0);
        assert!(cvs.iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    #[test]
    fn zero_steps_rejected() {
        let err = run_threaded(&quick(ConfigId::Cc.build(), 0)).unwrap_err();
        assert!(matches!(err, RuntimeError::NoSamples));
    }

    #[test]
    fn eight_members_complete_with_balanced_stats() {
        // An 8-member ensemble exercises eight independent staging
        // shards at once (one writer + one reader each, 16 threads on
        // the DTL). All members must stream to completion with exact
        // per-member accounting — a member blocked on another member's
        // lock would show up as a timeout here.
        let spec = ensemble_core::EnsembleSpec::new(
            (0..8)
                .map(|node| {
                    ensemble_core::MemberSpec::new(
                        ensemble_core::ComponentSpec::simulation(16, node),
                        vec![ensemble_core::ComponentSpec::analysis(8, node)],
                    )
                })
                .collect(),
        );
        let exec = run_threaded(&quick(spec, 3)).unwrap();
        assert_eq!(exec.trace.member_indexes(), (0..8).collect::<Vec<_>>());
        assert_eq!(exec.staging_stats.puts, 8 * 3);
        assert_eq!(exec.staging_stats.gets, 8 * 3);
        for member in 0..8 {
            let cvs = &exec.cv_series[&ComponentRef::analysis(member, 1)];
            assert_eq!(cvs.len(), 3, "member {member} must consume every frame");
        }
    }

    #[test]
    fn trace_respects_protocol_order() {
        let exec = run_threaded(&quick(ConfigId::Cf.build(), 3)).unwrap();
        let sim = ComponentRef::simulation(0);
        let ana = ComponentRef::analysis(0, 1);
        let writes: Vec<_> =
            exec.trace.for_component(sim).filter(|iv| iv.kind == StageKind::Write).collect();
        let reads: Vec<_> =
            exec.trace.for_component(ana).filter(|iv| iv.kind == StageKind::Read).collect();
        for (w, r) in writes.iter().zip(&reads) {
            assert!(r.end >= w.start, "read cannot finish before its write started");
        }
    }
}
