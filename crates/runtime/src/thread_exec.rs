//! Threaded execution: the runtime actually runs the kernels.
//!
//! Each member's simulation is a real Lennard-Jones MD engine producing
//! frames every stride; each analysis is the real bipartite-eigenvalue
//! kernel. Components run on OS threads and couple through the in-memory
//! DTL with the paper's synchronous protocol. Stage boundaries are
//! measured with wall-clock time and recorded in the same trace format
//! as the simulated mode.
//!
//! Members couple through *disjoint* variables, and the staging area is
//! sharded per variable: each member's writer/reader threads only ever
//! take their own variable's lock, so members never serialize on the
//! DTL and the measured idle stages reflect the coupling protocol, not
//! lock contention.
//!
//! # Supervision
//!
//! Every member runs under a supervisor thread. A component worker that
//! fails or panics no longer tears down the run: the worker hard-closes
//! the member's variable (unblocking its peer with
//! [`DtlError::VariableClosed`]), the supervisor records the failure
//! step and root cause, and surviving members stream to completion
//! untouched — their variables are disjoint, so a dead member cannot
//! block them. With a [`RestartPolicy`], the supervisor reopens the
//! variable ([`SyncStaging::reset_variable`]) and reruns the member
//! from step 0 with the same seed, bounded by `max_restarts`. Only a
//! successful attempt's trace is merged into the run's trace; failed
//! attempts leave no intervals behind. Fault plans
//! ([`dtl::fault::FaultPlan`]) drive deterministic chaos: store/load
//! faults through the staging tier's [`FaultInjector`], member kills at
//! a chosen step through the simulation worker.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dtl::fault::{FaultInjector, FaultPlan, FaultStats};
use dtl::protocol::ReaderId;
use dtl::staging::{MemoryStore, RetryPolicy, StagingStats, SyncStaging};
use dtl::{DtlError, DtlReader, VariableId, VariableSpec};
use ensemble_core::{ComponentRef, EnsembleSpec, MemberSpec, StageKind};
use kernels::analysis::{
    ContactCount, EigenAnalysis, FrameKernel, MsdKernel, RadiusOfGyration, RmsdKernel,
};
use kernels::md::{MdConfig, MdSimulation};
use metrics::{ExecutionTrace, TraceRecorder};

use crate::error::{RuntimeError, RuntimeResult};
use crate::frame_codec::FrameCodec;

/// The staging type of threaded runs: in-memory staging behind a fault
/// injector (a passthrough when the run has no fault plan).
pub type ChaosStaging = SyncStaging<FaultInjector<MemoryStore>>;

/// Which in situ analysis kernel the threaded runtimes couple to each
/// simulation (paper §2.2: the chunk contract is kernel-agnostic).
#[derive(Debug, Clone, PartialEq)]
pub enum KernelChoice {
    /// The paper's bipartite-eigenvalue collective variable.
    Eigen {
        /// Bipartite group size.
        group: usize,
        /// Gaussian contact width.
        sigma: f64,
    },
    /// RMSD against the first frame.
    Rmsd,
    /// Radius of gyration.
    RadiusOfGyration,
    /// Contact count between interleaved groups.
    ContactCount {
        /// Group size.
        group: usize,
        /// Contact cutoff distance.
        cutoff: f64,
    },
    /// Mean-squared displacement (stateful, unwrapped).
    Msd,
}

impl KernelChoice {
    /// Instantiates the kernel for a system of `atoms` atoms.
    pub fn build(&self, atoms: usize) -> Box<dyn FrameKernel> {
        match *self {
            KernelChoice::Eigen { group, sigma } => {
                Box::new(EigenAnalysis::interleaved(atoms, group, sigma))
            }
            KernelChoice::Rmsd => Box::new(RmsdKernel::from_first_frame()),
            KernelChoice::RadiusOfGyration => Box::new(RadiusOfGyration),
            KernelChoice::ContactCount { group, cutoff } => {
                Box::new(ContactCount::interleaved(atoms, group, cutoff))
            }
            KernelChoice::Msd => Box::new(MsdKernel::new()),
        }
    }
}

/// Bounded member restarts: a failed member is rerun from step 0 (same
/// seed) at most `max_restarts` times before it is reported failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartPolicy {
    /// Restart attempts allowed per member (0 = fail immediately).
    pub max_restarts: u32,
}

/// How one member's supervised execution ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemberOutcome {
    /// The member streamed every step on its first attempt.
    Completed,
    /// The member failed and was not (successfully) restarted.
    Failed {
        /// Step the failing component had reached.
        step: u64,
        /// Root cause (the first non-secondary worker failure).
        cause: String,
    },
    /// The member completed after `attempts` restart(s).
    Restarted {
        /// Restarts it took to complete.
        attempts: u32,
    },
}

impl MemberOutcome {
    /// True when the member did not complete.
    pub fn is_failed(&self) -> bool {
        matches!(self, MemberOutcome::Failed { .. })
    }
}

/// Configuration of a threaded (real-kernel) run.
#[derive(Debug, Clone)]
pub struct ThreadRunConfig {
    /// Ensemble structure (placements are honoured for data homing;
    /// cores are not pinned — threads share the host).
    pub spec: EnsembleSpec,
    /// MD settings for every simulation (the seed is offset per member
    /// so trajectories differ).
    pub md: MdConfig,
    /// Bipartite group size for the eigen analysis.
    pub analysis_group_size: usize,
    /// Gaussian contact width of the analysis.
    pub analysis_sigma: f64,
    /// In situ steps (frames) to execute.
    pub n_steps: u64,
    /// Chunks in flight per member variable (1 = paper semantics).
    pub staging_capacity: u64,
    /// Per-operation timeout.
    pub timeout: Duration,
    /// Analysis kernel; `None` uses the paper's eigenvalue kernel with
    /// `analysis_group_size` / `analysis_sigma`.
    pub kernel: Option<KernelChoice>,
    /// Deterministic fault plan (store/load faults + member kills);
    /// `None` runs fault-free.
    pub fault_plan: Option<FaultPlan>,
    /// Retry policy for transient staging faults; `None` surfaces the
    /// first store error to the worker.
    pub retry: Option<RetryPolicy>,
    /// Bounded member restarts; `None` means a failed member stays
    /// failed.
    pub restart: Option<RestartPolicy>,
}

impl Default for ThreadRunConfig {
    fn default() -> Self {
        ThreadRunConfig {
            spec: ensemble_core::ConfigId::Cc.build(),
            md: MdConfig::default(),
            analysis_group_size: 64,
            analysis_sigma: 1.2,
            n_steps: 4,
            staging_capacity: 1,
            timeout: Duration::from_secs(120),
            kernel: None,
            fault_plan: None,
            retry: None,
            restart: None,
        }
    }
}

/// What a threaded run produces.
#[derive(Debug)]
pub struct ThreadExecution {
    /// Stage trace in wall-clock seconds from run start (successful
    /// attempts only).
    pub trace: ExecutionTrace,
    /// Collective-variable series per analysis component (absent for
    /// failed members).
    pub cv_series: HashMap<ComponentRef, Vec<f64>>,
    /// DTL operation counters (including retry/giveup counts).
    pub staging_stats: StagingStats,
    /// Per-member outcome, in member order.
    pub member_outcomes: Vec<MemberOutcome>,
    /// Faults the run's plan actually injected.
    pub fault_stats: FaultStats,
}

impl ThreadExecution {
    /// Members that did not complete.
    pub fn failed_members(&self) -> Vec<usize> {
        self.member_outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_failed())
            .map(|(i, _)| i)
            .collect()
    }
}

/// Runs the ensemble with real kernels on real threads, one supervisor
/// per member. Member failures are contained (see the module docs);
/// `Err` is reserved for configuration-level problems.
pub fn run_threaded(cfg: &ThreadRunConfig) -> RuntimeResult<ThreadExecution> {
    cfg.spec.validate(None)?;
    if cfg.n_steps == 0 {
        return Err(RuntimeError::NoSamples);
    }
    let plan = cfg.fault_plan.clone().unwrap_or_default();
    let mut area = SyncStaging::with_capacity(
        FaultInjector::new(MemoryStore::new(), plan.clone()),
        cfg.staging_capacity,
    );
    if let Some(retry) = &cfg.retry {
        area = area.with_retry(retry.clone());
    }
    let staging = Arc::new(area);
    let recorder = TraceRecorder::new();
    let epoch = Instant::now();

    // Register one variable per member up front (single registration
    // point avoids writer/reader races).
    let mut variables = Vec::with_capacity(cfg.spec.members.len());
    for (i, member) in cfg.spec.members.iter().enumerate() {
        let home_node = *member.simulation.nodes.iter().next().ok_or_else(|| {
            RuntimeError::Model(ensemble_core::ModelError::EmptyNodeSet {
                member: i,
                component: "simulation".into(),
            })
        })?;
        let var = staging.register(VariableSpec {
            name: format!("trajectory/member{i}"),
            expected_readers: member.k() as u32,
            home_node,
        })?;
        variables.push(var);
    }

    let max_restarts = cfg.restart.map_or(0, |r| r.max_restarts);
    let results: Vec<(MemberOutcome, Vec<(ComponentRef, Vec<f64>)>)> =
        crossbeam::thread::scope(|scope| {
            let mut supervisors = Vec::new();
            for (i, member) in cfg.spec.members.iter().enumerate() {
                let staging = Arc::clone(&staging);
                let recorder = recorder.clone();
                let plan = &plan;
                let var = variables[i];
                supervisors.push(scope.spawn(move |_| {
                    supervise_member(SuperviseArgs {
                        cfg,
                        member_idx: i,
                        member,
                        var,
                        staging,
                        plan,
                        recorder,
                        epoch,
                        max_restarts,
                    })
                }));
            }
            supervisors.into_iter().map(|h| h.join().expect("supervisors do not panic")).collect()
        })
        .map_err(|_| RuntimeError::WorkerPanicked { component: "scope".into() })?;

    let mut cv_series: HashMap<ComponentRef, Vec<f64>> = HashMap::new();
    let mut member_outcomes = Vec::with_capacity(results.len());
    for (outcome, pairs) in results {
        for (cref, cvs) in pairs {
            if !cref.is_simulation() {
                cv_series.insert(cref, cvs);
            }
        }
        member_outcomes.push(outcome);
    }
    staging.close();
    let fault_stats = staging.store().stats();
    Ok(ThreadExecution {
        trace: recorder.into_trace(),
        cv_series,
        staging_stats: staging.stats(),
        member_outcomes,
        fault_stats,
    })
}

/// Everything one member's supervisor needs.
struct SuperviseArgs<'a> {
    cfg: &'a ThreadRunConfig,
    member_idx: usize,
    member: &'a MemberSpec,
    var: VariableId,
    staging: Arc<ChaosStaging>,
    plan: &'a FaultPlan,
    recorder: TraceRecorder,
    epoch: Instant,
    max_restarts: u32,
}

/// One worker's failure before step/component attribution.
struct WorkerFailure {
    cause: String,
    /// True when the failure is a `VariableClosed` — i.e. collateral of
    /// the peer's failure, not the root cause.
    secondary: bool,
}

/// A member attempt's failure, attributed to a step and component.
struct MemberFailure {
    step: u64,
    cause: String,
    secondary: bool,
}

/// Runs attempts of one member until success or the restart budget is
/// spent. Only a successful attempt's trace reaches the run's recorder.
fn supervise_member(args: SuperviseArgs<'_>) -> (MemberOutcome, Vec<(ComponentRef, Vec<f64>)>) {
    let mut attempt: u32 = 0;
    loop {
        let attempt_recorder = TraceRecorder::new();
        match run_member_attempt(&args, &attempt_recorder, attempt) {
            Ok(pairs) => {
                args.recorder.absorb(attempt_recorder.into_trace());
                let outcome = if attempt == 0 {
                    MemberOutcome::Completed
                } else {
                    MemberOutcome::Restarted { attempts: attempt }
                };
                return (outcome, pairs);
            }
            Err(failure) => {
                // The failed attempt's intervals are discarded with its
                // recorder; restart from a fresh protocol if allowed.
                if attempt < args.max_restarts && args.staging.reset_variable(args.var).is_ok() {
                    attempt += 1;
                    continue;
                }
                return (
                    MemberOutcome::Failed { step: failure.step, cause: failure.cause },
                    Vec::new(),
                );
            }
        }
    }
}

/// One attempt: simulation + K analyses on real threads. Every worker is
/// panic-contained; any failing worker hard-closes the member's variable
/// so its peers unblock promptly with `VariableClosed`. The returned
/// failure is the attempt's root cause (first non-secondary failure).
fn run_member_attempt(
    args: &SuperviseArgs<'_>,
    recorder: &TraceRecorder,
    attempt: u32,
) -> Result<Vec<(ComponentRef, Vec<f64>)>, MemberFailure> {
    let SuperviseArgs { cfg, member_idx, member, var, staging, plan, epoch, .. } = args;
    let (member_idx, var, epoch) = (*member_idx, *var, *epoch);
    let home_node = *member.simulation.nodes.iter().next().expect("validated");
    let result = crossbeam::thread::scope(|scope| {
        type WorkerResult = Result<Vec<f64>, WorkerFailure>;
        let mut handles: Vec<(ComponentRef, Arc<AtomicU64>, _)> = Vec::new();

        // --- Simulation worker. ---
        let sim_ref = ComponentRef::simulation(member_idx);
        {
            let staging = Arc::clone(staging);
            let recorder = recorder.clone();
            let mut md_cfg = cfg.md.clone();
            md_cfg.seed = cfg.md.seed.wrapping_add(member_idx as u64);
            let n_steps = cfg.n_steps;
            let timeout = cfg.timeout;
            let plan = (*plan).clone();
            let progress = Arc::new(AtomicU64::new(0));
            let progress_w = Arc::clone(&progress);
            let handle = scope.spawn(move |_| -> WorkerResult {
                let body = || -> RuntimeResult<Vec<f64>> {
                    let mut sim = MdSimulation::new(&md_cfg);
                    let mut step_writer =
                        ManualWriter { staging: Arc::clone(&staging), var, home_node, timeout };
                    for step in 0..n_steps {
                        progress_w.store(step, Ordering::Relaxed);
                        // Kills fire on the first attempt only, so a
                        // restarted member can complete.
                        if attempt == 0 {
                            if let Some(kill) = plan.kill_for(member_idx, step) {
                                if kill.panic {
                                    panic!("injected panic (member {member_idx}, step {step})");
                                }
                                return Err(RuntimeError::InjectedKill {
                                    member: member_idx,
                                    step,
                                });
                            }
                        }
                        let t0 = epoch.elapsed().as_secs_f64();
                        let frame = sim.advance_stride();
                        let t1 = epoch.elapsed().as_secs_f64();
                        recorder.record(sim_ref, StageKind::Simulate, step, t0, t1);
                        step_writer.wait_slot(step)?;
                        let t2 = epoch.elapsed().as_secs_f64();
                        if t2 > t1 {
                            recorder.record(sim_ref, StageKind::SimIdle, step, t1, t2);
                        }
                        step_writer.write(step, &frame)?;
                        let t3 = epoch.elapsed().as_secs_f64();
                        recorder.record(sim_ref, StageKind::Write, step, t2, t3);
                    }
                    Ok(Vec::new())
                };
                finish_worker(catch_unwind(AssertUnwindSafe(body)), &staging, var)
            });
            handles.push((sim_ref, progress, handle));
        }

        // --- Analysis workers. ---
        for j in 1..=member.k() {
            let ana_ref = ComponentRef::analysis(member_idx, j);
            let staging = Arc::clone(staging);
            let recorder = recorder.clone();
            let n_steps = cfg.n_steps;
            let timeout = cfg.timeout;
            let choice = cfg.kernel.clone().unwrap_or(KernelChoice::Eigen {
                group: cfg.analysis_group_size,
                sigma: cfg.analysis_sigma,
            });
            let progress = Arc::new(AtomicU64::new(0));
            let progress_r = Arc::clone(&progress);
            let handle = scope.spawn(move |_| -> WorkerResult {
                let body = || -> RuntimeResult<Vec<f64>> {
                    let reader_id = ReaderId(j as u32 - 1);
                    let mut reader =
                        DtlReader::attach(Arc::clone(&staging), FrameCodec, var, reader_id);
                    reader.set_timeout(timeout);
                    let mut analysis: Option<Box<dyn FrameKernel>> = None;
                    let mut cvs = Vec::with_capacity(n_steps as usize);
                    for step in 0..n_steps {
                        progress_r.store(step, Ordering::Relaxed);
                        let t0 = epoch.elapsed().as_secs_f64();
                        staging.wait_readable(var, step, reader_id, timeout)?;
                        let t1 = epoch.elapsed().as_secs_f64();
                        if t1 > t0 {
                            recorder.record(ana_ref, StageKind::AnaIdle, step, t0, t1);
                        }
                        let frame = reader.read()?;
                        let t2 = epoch.elapsed().as_secs_f64();
                        recorder.record(ana_ref, StageKind::Read, step, t1, t2);
                        let kernel =
                            analysis.get_or_insert_with(|| choice.build(frame.num_atoms()));
                        let cv = kernel.compute(&frame);
                        let t3 = epoch.elapsed().as_secs_f64();
                        recorder.record(ana_ref, StageKind::Analyze, step, t2, t3);
                        cvs.push(cv);
                    }
                    Ok(cvs)
                };
                finish_worker(catch_unwind(AssertUnwindSafe(body)), &staging, var)
            });
            handles.push((ana_ref, progress, handle));
        }

        let mut pairs = Vec::new();
        let mut failures: Vec<MemberFailure> = Vec::new();
        for (cref, progress, handle) in handles {
            match handle.join() {
                Ok(Ok(cvs)) => pairs.push((cref, cvs)),
                Ok(Err(wf)) => failures.push(MemberFailure {
                    step: progress.load(Ordering::Relaxed),
                    cause: format!("{cref}: {}", wf.cause),
                    secondary: wf.secondary,
                }),
                // Unreachable in practice: worker bodies are
                // panic-contained above.
                Err(_) => failures.push(MemberFailure {
                    step: progress.load(Ordering::Relaxed),
                    cause: format!("{cref}: worker thread died"),
                    secondary: false,
                }),
            }
        }
        if failures.is_empty() {
            Ok(pairs)
        } else {
            let root = failures.iter().position(|f| !f.secondary).unwrap_or(0);
            Err(failures.swap_remove(root))
        }
    });
    match result {
        Ok(attempt_result) => attempt_result,
        Err(_) => {
            Err(MemberFailure { step: 0, cause: "member scope panicked".into(), secondary: false })
        }
    }
}

/// Converts a panic-contained worker body result into the worker's
/// verdict, hard-closing the member's variable on any failure so peers
/// blocked on it unblock promptly.
fn finish_worker<T>(
    result: std::thread::Result<RuntimeResult<T>>,
    staging: &ChaosStaging,
    var: VariableId,
) -> Result<T, WorkerFailure> {
    match result {
        Ok(Ok(v)) => Ok(v),
        Ok(Err(e)) => {
            let secondary = matches!(&e, RuntimeError::Dtl(DtlError::VariableClosed { .. }));
            let _ = staging.close_variable(var);
            Err(WorkerFailure { cause: e.to_string(), secondary })
        }
        Err(panic) => {
            let _ = staging.close_variable(var);
            Err(WorkerFailure {
                cause: format!("panic: {}", panic_message(panic.as_ref())),
                secondary: false,
            })
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Minimal writer used by the simulation worker: the variable is
/// pre-registered, so it stages chunks directly.
struct ManualWriter {
    staging: Arc<ChaosStaging>,
    var: dtl::VariableId,
    home_node: usize,
    timeout: Duration,
}

impl ManualWriter {
    fn wait_slot(&self, step: u64) -> RuntimeResult<()> {
        self.staging.wait_writable(self.var, step, self.timeout)?;
        Ok(())
    }

    fn write(&mut self, step: u64, frame: &kernels::md::Frame) -> RuntimeResult<()> {
        let chunk =
            dtl::Chunk::new(self.var, step, self.home_node, "md-frame-v1", frame.to_bytes());
        self.staging.put_timeout(chunk, self.timeout)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtl::fault::{FaultOp, FaultRule, MemberKill};
    use ensemble_core::ConfigId;

    fn quick(spec: ensemble_core::EnsembleSpec, steps: u64) -> ThreadRunConfig {
        ThreadRunConfig {
            spec,
            md: MdConfig { atoms_per_side: 5, stride: 10, ..Default::default() },
            analysis_group_size: 32,
            analysis_sigma: 1.2,
            n_steps: steps,
            staging_capacity: 1,
            timeout: Duration::from_secs(60),
            kernel: None,
            fault_plan: None,
            retry: None,
            restart: None,
        }
    }

    #[test]
    fn single_member_end_to_end() {
        let exec = run_threaded(&quick(ConfigId::Cc.build(), 3)).unwrap();
        let sim = ComponentRef::simulation(0);
        let ana = ComponentRef::analysis(0, 1);
        assert_eq!(exec.trace.stage_series(sim, StageKind::Simulate).len(), 3);
        assert_eq!(exec.trace.stage_series(ana, StageKind::Analyze).len(), 3);
        let cvs = &exec.cv_series[&ana];
        assert_eq!(cvs.len(), 3);
        assert!(cvs.iter().all(|v| *v > 0.0 && v.is_finite()));
        assert_eq!(exec.staging_stats.puts, 3);
        assert_eq!(exec.staging_stats.gets, 3);
        assert_eq!(exec.member_outcomes, vec![MemberOutcome::Completed]);
        assert_eq!(exec.fault_stats.total_injected(), 0);
    }

    #[test]
    fn two_members_run_concurrently() {
        let exec = run_threaded(&quick(ConfigId::C1_5.build(), 2)).unwrap();
        assert_eq!(exec.trace.member_indexes(), vec![0, 1]);
        assert_eq!(exec.staging_stats.puts, 4);
        // Trajectories differ across members (different seeds) ⇒ CVs
        // differ.
        let a = &exec.cv_series[&ComponentRef::analysis(0, 1)];
        let b = &exec.cv_series[&ComponentRef::analysis(1, 1)];
        assert_ne!(a, b);
    }

    #[test]
    fn two_analyses_share_frames() {
        // A member with two analyses: both read every frame; CVs match
        // because the kernels are identical.
        let spec = ensemble_core::EnsembleSpec::new(vec![ensemble_core::MemberSpec::new(
            ensemble_core::ComponentSpec::simulation(16, 0),
            vec![
                ensemble_core::ComponentSpec::analysis(8, 0),
                ensemble_core::ComponentSpec::analysis(8, 0),
            ],
        )]);
        let exec = run_threaded(&quick(spec, 2)).unwrap();
        let a = &exec.cv_series[&ComponentRef::analysis(0, 1)];
        let b = &exec.cv_series[&ComponentRef::analysis(0, 2)];
        assert_eq!(a, b, "identical kernels over identical frames");
        assert_eq!(exec.staging_stats.gets, 4, "2 steps × 2 readers");
    }

    #[test]
    fn alternative_kernels_run_through_the_runtime() {
        // RMSD against the first frame: the first CV is exactly 0 and
        // later ones grow as the system diffuses.
        let mut cfg = quick(ConfigId::Cc.build(), 4);
        cfg.kernel = Some(KernelChoice::Rmsd);
        let exec = run_threaded(&cfg).unwrap();
        let cvs = &exec.cv_series[&ComponentRef::analysis(0, 1)];
        assert_eq!(cvs[0], 0.0, "first frame is its own reference");
        assert!(cvs[1..].iter().all(|v| *v > 0.0));

        // The stateful MSD kernel also works (monotone from zero for a
        // diffusing fluid over a short horizon).
        let mut cfg = quick(ConfigId::Cc.build(), 4);
        cfg.kernel = Some(KernelChoice::Msd);
        let exec = run_threaded(&cfg).unwrap();
        let cvs = &exec.cv_series[&ComponentRef::analysis(0, 1)];
        assert_eq!(cvs[0], 0.0);
        assert!(cvs.iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    #[test]
    fn zero_steps_rejected() {
        let err = run_threaded(&quick(ConfigId::Cc.build(), 0)).unwrap_err();
        assert!(matches!(err, RuntimeError::NoSamples));
    }

    #[test]
    fn eight_members_complete_with_balanced_stats() {
        // An 8-member ensemble exercises eight independent staging
        // shards at once (one writer + one reader each, 16 threads on
        // the DTL). All members must stream to completion with exact
        // per-member accounting — a member blocked on another member's
        // lock would show up as a timeout here.
        let spec = ensemble_core::EnsembleSpec::new(
            (0..8)
                .map(|node| {
                    ensemble_core::MemberSpec::new(
                        ensemble_core::ComponentSpec::simulation(16, node),
                        vec![ensemble_core::ComponentSpec::analysis(8, node)],
                    )
                })
                .collect(),
        );
        let exec = run_threaded(&quick(spec, 3)).unwrap();
        assert_eq!(exec.trace.member_indexes(), (0..8).collect::<Vec<_>>());
        assert_eq!(exec.staging_stats.puts, 8 * 3);
        assert_eq!(exec.staging_stats.gets, 8 * 3);
        for member in 0..8 {
            let cvs = &exec.cv_series[&ComponentRef::analysis(member, 1)];
            assert_eq!(cvs.len(), 3, "member {member} must consume every frame");
        }
    }

    #[test]
    fn trace_respects_protocol_order() {
        let exec = run_threaded(&quick(ConfigId::Cf.build(), 3)).unwrap();
        let sim = ComponentRef::simulation(0);
        let ana = ComponentRef::analysis(0, 1);
        let writes: Vec<_> =
            exec.trace.for_component(sim).filter(|iv| iv.kind == StageKind::Write).collect();
        let reads: Vec<_> =
            exec.trace.for_component(ana).filter(|iv| iv.kind == StageKind::Read).collect();
        for (w, r) in writes.iter().zip(&reads) {
            assert!(r.end >= w.start, "read cannot finish before its write started");
        }
    }

    #[test]
    fn killed_member_fails_while_survivors_complete() {
        let baseline = run_threaded(&quick(ConfigId::C1_5.build(), 3)).unwrap();

        let mut cfg = quick(ConfigId::C1_5.build(), 3);
        cfg.fault_plan =
            Some(FaultPlan::new(42).with_kill(MemberKill { member: 1, step: 1, panic: false }));
        let exec = run_threaded(&cfg).unwrap();

        assert_eq!(exec.member_outcomes[0], MemberOutcome::Completed);
        match &exec.member_outcomes[1] {
            MemberOutcome::Failed { step, cause } => {
                assert_eq!(*step, 1);
                assert!(cause.contains("injected kill"), "{cause}");
            }
            other => panic!("member 1 must fail, got {other:?}"),
        }
        assert_eq!(exec.failed_members(), vec![1]);
        // The survivor's CV series is bit-identical to the fault-free
        // run (members couple through disjoint variables).
        let survivor = &exec.cv_series[&ComponentRef::analysis(0, 1)];
        let reference = &baseline.cv_series[&ComponentRef::analysis(0, 1)];
        assert_eq!(survivor.len(), 3);
        assert!(
            survivor.iter().zip(reference).all(|(a, b)| a.to_bits() == b.to_bits()),
            "survivor CVs must be unaffected by the dead member"
        );
        // The dead member's analysis produced nothing.
        assert!(!exec.cv_series.contains_key(&ComponentRef::analysis(1, 1)));
    }

    #[test]
    fn panicking_member_is_contained() {
        let mut cfg = quick(ConfigId::C1_5.build(), 3);
        cfg.fault_plan =
            Some(FaultPlan::new(7).with_kill(MemberKill { member: 0, step: 0, panic: true }));
        let exec = run_threaded(&cfg).unwrap();
        match &exec.member_outcomes[0] {
            MemberOutcome::Failed { step, cause } => {
                assert_eq!(*step, 0);
                assert!(cause.contains("panic"), "{cause}");
            }
            other => panic!("member 0 must fail, got {other:?}"),
        }
        assert_eq!(exec.member_outcomes[1], MemberOutcome::Completed);
        assert_eq!(exec.cv_series[&ComponentRef::analysis(1, 1)].len(), 3);
    }

    #[test]
    fn restart_policy_reruns_a_killed_member() {
        let baseline = run_threaded(&quick(ConfigId::Cc.build(), 3)).unwrap();

        let mut cfg = quick(ConfigId::Cc.build(), 3);
        cfg.fault_plan =
            Some(FaultPlan::new(3).with_kill(MemberKill { member: 0, step: 1, panic: false }));
        cfg.restart = Some(RestartPolicy { max_restarts: 1 });
        let exec = run_threaded(&cfg).unwrap();

        assert_eq!(exec.member_outcomes[0], MemberOutcome::Restarted { attempts: 1 });
        // The restarted member reruns from step 0 with the same seed:
        // its CV series matches the fault-free run bit-for-bit, and the
        // failed attempt's partial trace was discarded.
        let cvs = &exec.cv_series[&ComponentRef::analysis(0, 1)];
        let reference = &baseline.cv_series[&ComponentRef::analysis(0, 1)];
        assert!(cvs.iter().zip(reference).all(|(a, b)| a.to_bits() == b.to_bits()));
        let sim = ComponentRef::simulation(0);
        assert_eq!(exec.trace.stage_series(sim, StageKind::Simulate).len(), 3);
    }

    #[test]
    fn retry_policy_rides_out_transient_store_faults() {
        let mut cfg = quick(ConfigId::Cc.build(), 3);
        cfg.fault_plan =
            Some(FaultPlan::new(9).with_rule(FaultRule::fail(FaultOp::Store).first_attempts(1)));
        cfg.retry = Some(RetryPolicy::with_attempts(3));
        let exec = run_threaded(&cfg).unwrap();
        assert_eq!(exec.member_outcomes, vec![MemberOutcome::Completed]);
        assert!(exec.staging_stats.retries >= 1, "{:?}", exec.staging_stats);
        assert_eq!(exec.staging_stats.giveups, 0);
        assert!(exec.fault_stats.injected_failures >= 1);
        assert_eq!(exec.cv_series[&ComponentRef::analysis(0, 1)].len(), 3);
    }

    #[test]
    fn unretried_store_fault_fails_only_that_member() {
        // No retry policy: the first store fault kills member 0's
        // writer; member 1 is untouched.
        let mut cfg = quick(ConfigId::C1_5.build(), 3);
        cfg.fault_plan = Some(
            FaultPlan::new(1)
                .with_rule(FaultRule::fail(FaultOp::Store).on_variable(0).first_attempts(1)),
        );
        let exec = run_threaded(&cfg).unwrap();
        match &exec.member_outcomes[0] {
            MemberOutcome::Failed { cause, .. } => {
                assert!(cause.contains("injected store failure"), "{cause}");
            }
            other => panic!("member 0 must fail, got {other:?}"),
        }
        assert_eq!(exec.member_outcomes[1], MemberOutcome::Completed);
        assert_eq!(exec.fault_stats.injected_failures, 1);
    }
}
