//! Runtime errors.

use std::fmt;

/// Errors from configuring or running an ensemble execution.
#[derive(Debug)]
pub enum RuntimeError {
    /// The ensemble spec failed validation.
    Model(ensemble_core::ModelError),
    /// Core allocation on the platform failed.
    Platform(hpc_platform::PlatformError),
    /// The data transport layer failed.
    Dtl(dtl::DtlError),
    /// A component spans multiple nodes, which the runtime does not
    /// execute (the paper's configurations are single-node components).
    MultiNodeComponent {
        /// Offending component description.
        component: String,
    },
    /// A worker thread panicked.
    WorkerPanicked {
        /// Component whose worker died.
        component: String,
    },
    /// A fault plan killed this member's component mid-run.
    InjectedKill {
        /// Member that was killed.
        member: usize,
        /// Step at which the kill fired.
        step: u64,
    },
    /// The run produced no usable samples (e.g. zero steps requested).
    NoSamples,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Model(e) => write!(f, "model error: {e}"),
            RuntimeError::Platform(e) => write!(f, "platform error: {e}"),
            RuntimeError::Dtl(e) => write!(f, "DTL error: {e}"),
            RuntimeError::MultiNodeComponent { component } => {
                write!(f, "component {component} spans multiple nodes (unsupported by the runtime)")
            }
            RuntimeError::WorkerPanicked { component } => {
                write!(f, "worker thread for {component} panicked")
            }
            RuntimeError::InjectedKill { member, step } => {
                write!(f, "injected kill (member {member}, step {step})")
            }
            RuntimeError::NoSamples => write!(f, "run produced no samples (n_steps must be ≥ 1)"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Model(e) => Some(e),
            RuntimeError::Platform(e) => Some(e),
            RuntimeError::Dtl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ensemble_core::ModelError> for RuntimeError {
    fn from(e: ensemble_core::ModelError) -> Self {
        RuntimeError::Model(e)
    }
}

impl From<hpc_platform::PlatformError> for RuntimeError {
    fn from(e: hpc_platform::PlatformError) -> Self {
        RuntimeError::Platform(e)
    }
}

impl From<dtl::DtlError> for RuntimeError {
    fn from(e: dtl::DtlError) -> Self {
        RuntimeError::Dtl(e)
    }
}

/// Convenience alias.
pub type RuntimeResult<T> = Result<T, RuntimeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: RuntimeError = ensemble_core::ModelError::EmptyEnsemble.into();
        assert!(e.to_string().contains("model error"));
        let e: RuntimeError = dtl::DtlError::Closed.into();
        assert!(e.to_string().contains("DTL"));
        let e = RuntimeError::MultiNodeComponent { component: "Sim1".into() };
        assert!(e.to_string().contains("Sim1"));
    }
}
