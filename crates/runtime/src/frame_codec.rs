//! The DTL plugin codec for MD trajectory frames — "the simulation using
//! the DTL plugin to write out data abstracted into a chunk" (Figure 2).

use bytes::Bytes;
use dtl::{ChunkCodec, DtlError, DtlResult};
use kernels::md::Frame;

/// Encodes [`Frame`]s into chunk payloads using the frame wire format.
#[derive(Debug, Clone, Copy, Default)]
pub struct FrameCodec;

impl ChunkCodec for FrameCodec {
    type Value = Frame;

    fn encoding(&self) -> &'static str {
        "md-frame-v1"
    }

    fn encode(&self, value: &Frame) -> Bytes {
        value.to_bytes()
    }

    fn decode(&self, data: Bytes) -> DtlResult<Frame> {
        Frame::from_bytes(data).map_err(|e| DtlError::Codec { detail: e.to_string() })
    }
}

/// Lossy quantized frame codec: half the staging bytes at a bounded
/// per-coordinate error of `box_len / 2¹⁶` (XTC-style compression).
#[derive(Debug, Clone, Copy, Default)]
pub struct QuantizedFrameCodec;

impl ChunkCodec for QuantizedFrameCodec {
    type Value = Frame;

    fn encoding(&self) -> &'static str {
        "md-frame-q16"
    }

    fn encode(&self, value: &Frame) -> Bytes {
        kernels::md::encode_quantized(value)
    }

    fn decode(&self, data: Bytes) -> DtlResult<Frame> {
        kernels::md::decode_quantized(data).map_err(|e| DtlError::Codec { detail: e.to_string() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_through_codec() {
        let frame = Frame {
            step: 42,
            time: 0.084,
            box_len: 9.0,
            positions: vec![[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]],
        };
        let codec = FrameCodec;
        let decoded = codec.decode(codec.encode(&frame)).unwrap();
        assert_eq!(decoded, frame);
        assert_eq!(codec.encoding(), "md-frame-v1");
    }

    #[test]
    fn corrupt_payload_is_codec_error() {
        let codec = FrameCodec;
        let err = codec.decode(Bytes::from_static(b"not a frame")).unwrap_err();
        assert!(matches!(err, DtlError::Codec { .. }));
    }

    #[test]
    fn quantized_codec_halves_the_payload() {
        let frame =
            Frame { step: 3, time: 0.5, box_len: 10.0, positions: vec![[1.0, 2.0, 3.0]; 1000] };
        let exact = FrameCodec.encode(&frame);
        let quant = QuantizedFrameCodec.encode(&frame);
        assert!(quant.len() * 2 < exact.len() + 100);
        let decoded = QuantizedFrameCodec.decode(quant).unwrap();
        assert_eq!(decoded.num_atoms(), 1000);
        for (a, b) in decoded.positions.iter().zip(&frame.positions) {
            for d in 0..3 {
                assert!((a[d] - b[d]).abs() <= 10.0 / 65535.0);
            }
        }
    }
}
