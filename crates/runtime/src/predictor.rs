//! Closed-form prediction: the paper's model evaluated without executing
//! anything.
//!
//! The steady-state stage times of every member follow directly from the
//! interference solve (compute stages) and the staging cost model (I/O
//! stages); Eqs. 1–3 then give `σ̄*`, the makespan, and `E`. Predictions
//! match the discrete-event execution exactly when jitter is zero — the
//! DES adds warm-up dynamics and noise, the prediction is the fixed
//! point they converge to. The scheduler uses this path to scan large
//! placement spaces cheaply.

use std::collections::HashMap;

use dtl::transport::StagingCostModel;
use ensemble_core::{
    efficiency, makespan, placement_indicator, sigma_star, AnalysisStageTimes, ComponentRef,
    MemberStageTimes,
};
use hpc_platform::{CoreAllocation, PerfEstimate, PlacedWorkload, Platform};

use crate::error::{RuntimeError, RuntimeResult};
use crate::sim_exec::SimRunConfig;

/// Predicted quantities for one member.
#[derive(Debug, Clone)]
pub struct MemberPrediction {
    /// Steady-state stage times.
    pub stage_times: MemberStageTimes,
    /// `σ̄*` (Eq. 1), seconds.
    pub sigma_star: f64,
    /// Eq. 2 makespan for the configured step count, seconds.
    pub makespan: f64,
    /// `E` (Eq. 3).
    pub efficiency: f64,
    /// `CP` (Eq. 6).
    pub cp: f64,
}

/// Prediction for a whole ensemble configuration.
#[derive(Debug, Clone)]
pub struct EnsemblePrediction {
    /// Per-member predictions, member order.
    pub members: Vec<MemberPrediction>,
    /// Predicted ensemble makespan (max member makespan), seconds.
    pub ensemble_makespan: f64,
    /// Solved per-component estimates.
    pub estimates: HashMap<ComponentRef, PerfEstimate>,
}

/// Prediction for a whole ensemble configuration, scoring path: the
/// per-member numbers without the per-component estimate map.
#[derive(Debug, Clone)]
pub struct ScorePrediction {
    /// Per-member predictions, member order.
    pub members: Vec<MemberPrediction>,
    /// Predicted ensemble makespan (max member makespan), seconds.
    pub ensemble_makespan: f64,
}

/// Predicts the steady state of `cfg` analytically (no DES run).
pub fn predict(cfg: &SimRunConfig) -> RuntimeResult<EnsemblePrediction> {
    let mut estimates: HashMap<ComponentRef, PerfEstimate> = HashMap::new();
    let (members, ensemble_makespan) = predict_inner(cfg, Some(&mut estimates))?;
    Ok(EnsemblePrediction { members, ensemble_makespan, estimates })
}

/// [`predict`] for callers that only read the per-member numbers (the
/// scheduler's scoring path): skips materializing the
/// `ComponentRef → PerfEstimate` map. Every float is bit-identical to
/// the corresponding field of [`predict`]'s output.
pub fn predict_scores(cfg: &SimRunConfig) -> RuntimeResult<ScorePrediction> {
    let (members, ensemble_makespan) = predict_inner(cfg, None)?;
    Ok(ScorePrediction { members, ensemble_makespan })
}

fn predict_inner(
    cfg: &SimRunConfig,
    mut estimates_out: Option<&mut HashMap<ComponentRef, PerfEstimate>>,
) -> RuntimeResult<(Vec<MemberPrediction>, f64)> {
    cfg.spec.validate(Some(cfg.node_spec.cores_per_node()))?;
    if cfg.n_steps == 0 {
        return Err(RuntimeError::NoSamples);
    }
    // Flat component indexing (member-major, simulation first) so the
    // scoring path can use dense vectors instead of per-call hash maps.
    let mut offsets = Vec::with_capacity(cfg.spec.members.len());
    let mut n_components = 0usize;
    for member in &cfg.spec.members {
        offsets.push(n_components);
        n_components += 1 + member.analyses.len();
    }
    let flat = |cref: ComponentRef| offsets[cref.member] + cref.slot;

    // Allocate exactly as the executor does.
    let num_nodes = cfg.spec.node_set().iter().copied().max().map_or(0, |m| m + 1);
    let mut platform = Platform::new(num_nodes, cfg.node_spec.clone(), cfg.network.clone());
    let mut allocations: Vec<Option<CoreAllocation>> = vec![None; n_components];
    for (i, member) in cfg.spec.members.iter().enumerate() {
        for (cref, comp) in std::iter::once((ComponentRef::simulation(i), &member.simulation))
            .chain(
                member
                    .analyses
                    .iter()
                    .enumerate()
                    .map(|(j, a)| (ComponentRef::analysis(i, j + 1), a)),
            )
        {
            if comp.nodes.len() != 1 {
                return Err(RuntimeError::MultiNodeComponent { component: cref.to_string() });
            }
            let node = *comp.nodes.iter().next().expect("validated non-empty");
            allocations[flat(cref)] = Some(platform.allocate(node, comp.cores, cfg.bind_policy)?);
        }
    }

    // Interference solve per node.
    let mut by_node: HashMap<usize, Vec<(ComponentRef, PlacedWorkload)>> = HashMap::new();
    for (cref, workload) in cfg.workloads.assignments(&cfg.spec) {
        let alloc = allocations[flat(cref)].clone().expect("allocated above");
        by_node.entry(alloc.node).or_default().push((cref, PlacedWorkload { alloc, workload }));
    }
    let mut seconds: Vec<f64> = vec![0.0; n_components];
    for placed in by_node.values() {
        let workloads: Vec<PlacedWorkload> = placed.iter().map(|(_, p)| p.clone()).collect();
        for ((cref, _), est) in
            placed.iter().zip(cfg.interference.solve_node(&cfg.node_spec, &workloads, &[]))
        {
            seconds[flat(*cref)] = est.seconds_per_step;
            if let Some(estimates) = estimates_out.as_deref_mut() {
                estimates.insert(*cref, est);
            }
        }
    }

    // Stage times per member.
    let cost = StagingCostModel::from_platform(&cfg.node_spec, &cfg.network);
    let chunk = cfg.workloads.chunk_bytes;
    let mut members = Vec::with_capacity(cfg.spec.members.len());
    let mut ensemble_makespan = 0.0f64;
    for (i, member) in cfg.spec.members.iter().enumerate() {
        let sim_node = *member.simulation.nodes.iter().next().expect("single-node");
        let s = seconds[flat(ComponentRef::simulation(i))];
        let w = cost.write_seconds(chunk, sim_node, sim_node);
        let analyses: Vec<AnalysisStageTimes> = (1..=member.k())
            .map(|j| {
                let ana_node = *member.analyses[j - 1].nodes.iter().next().expect("single-node");
                let r = if cfg.force_remote_reads && ana_node == sim_node {
                    cost.read_seconds(chunk, sim_node, sim_node + 1)
                } else {
                    cost.read_seconds(chunk, sim_node, ana_node)
                };
                AnalysisStageTimes { r, a: seconds[flat(ComponentRef::analysis(i, j))] }
            })
            .collect();
        let stage_times = MemberStageTimes::new(s, w, analyses)?;
        let sigma = sigma_star(&stage_times);
        let mk = makespan(&stage_times, cfg.n_steps);
        ensemble_makespan = ensemble_makespan.max(mk);
        members.push(MemberPrediction {
            sigma_star: sigma,
            makespan: mk,
            efficiency: efficiency(&stage_times),
            cp: placement_indicator(member),
            stage_times,
        });
    }
    Ok((members, ensemble_makespan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::EnsembleRunner;
    use crate::workload_map::WorkloadMap;
    use ensemble_core::ConfigId;

    fn quick_cfg(id: ConfigId) -> SimRunConfig {
        let mut cfg = SimRunConfig::paper(id.build());
        cfg.workloads = WorkloadMap::small_defaults();
        cfg.n_steps = 8;
        cfg.jitter = 0.0;
        cfg
    }

    #[test]
    fn prediction_matches_des_at_zero_jitter() {
        for id in [ConfigId::Cf, ConfigId::Cc, ConfigId::C1_4, ConfigId::C2_8] {
            let cfg = quick_cfg(id);
            let predicted = predict(&cfg).unwrap();
            let mut runner = EnsembleRunner::paper_config(id).small_scale().steps(8).jitter(0.0);
            let _ = runner.config_mut();
            let report = runner.run().unwrap();
            for (p, m) in predicted.members.iter().zip(&report.members) {
                let rel = (p.sigma_star - m.sigma_star).abs() / m.sigma_star;
                assert!(
                    rel < 1e-6,
                    "{id}: predicted σ̄ {} vs measured {}",
                    p.sigma_star,
                    m.sigma_star
                );
                assert!((p.efficiency - m.efficiency).abs() < 1e-6, "{id}");
                assert!((p.cp - m.cp).abs() < 1e-12, "{id}");
            }
        }
    }

    #[test]
    fn prediction_is_fast_relative_to_des() {
        // Not a benchmark — just a sanity check that predict() avoids
        // stepping the event loop (runs in well under a millisecond).
        let cfg = quick_cfg(ConfigId::C2_3);
        let started = std::time::Instant::now();
        for _ in 0..100 {
            predict(&cfg).unwrap();
        }
        assert!(started.elapsed().as_secs_f64() < 2.0);
    }

    #[test]
    fn predict_scores_matches_predict_bitwise() {
        for id in [ConfigId::Cf, ConfigId::Cc, ConfigId::C1_4, ConfigId::C2_8] {
            let mut cfg = quick_cfg(id);
            cfg.force_remote_reads = id == ConfigId::Cc;
            let full = predict(&cfg).unwrap();
            let scores = predict_scores(&cfg).unwrap();
            assert_eq!(
                full.ensemble_makespan.to_bits(),
                scores.ensemble_makespan.to_bits(),
                "{id}"
            );
            assert_eq!(full.members.len(), scores.members.len());
            for (a, b) in full.members.iter().zip(&scores.members) {
                assert_eq!(a.sigma_star.to_bits(), b.sigma_star.to_bits(), "{id}");
                assert_eq!(a.makespan.to_bits(), b.makespan.to_bits(), "{id}");
                assert_eq!(a.efficiency.to_bits(), b.efficiency.to_bits(), "{id}");
                assert_eq!(a.cp.to_bits(), b.cp.to_bits(), "{id}");
                assert_eq!(a.stage_times.s.to_bits(), b.stage_times.s.to_bits(), "{id}");
                assert_eq!(a.stage_times.w.to_bits(), b.stage_times.w.to_bits(), "{id}");
                for (x, y) in a.stage_times.analyses.iter().zip(&b.stage_times.analyses) {
                    assert_eq!(x.r.to_bits(), y.r.to_bits(), "{id}");
                    assert_eq!(x.a.to_bits(), y.a.to_bits(), "{id}");
                }
            }
            // The public map is still populated on the full path.
            assert_eq!(full.estimates.len(), cfg.spec.members.iter().map(|m| 1 + m.k()).sum());
        }
    }

    #[test]
    fn prediction_respects_ablation_flags() {
        let base = predict(&quick_cfg(ConfigId::Cc)).unwrap();
        let mut remote = quick_cfg(ConfigId::Cc);
        remote.force_remote_reads = true;
        let remote_pred = predict(&remote).unwrap();
        assert!(
            remote_pred.members[0].stage_times.analyses[0].r
                > base.members[0].stage_times.analyses[0].r
        );
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut cfg = quick_cfg(ConfigId::Cf);
        cfg.n_steps = 0;
        assert!(matches!(predict(&cfg), Err(RuntimeError::NoSamples)));
    }
}
