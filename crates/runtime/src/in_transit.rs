//! Threaded in-transit execution: the simulation free-runs, staging
//! frames into a bounded queue; analyses consume what survives. Frames
//! dropped under backpressure are counted — the *lost frames* domain
//! metric of Taufer et al. (the paper's reference \[26\]).
//!
//! As in the synchronous mode, each member owns its variable and the
//! async staging area is sharded per variable, so members' queues are
//! fully independent: one member's backpressure (and frame loss) never
//! slows another member's producer.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use dtl::protocol::ReaderId;
use dtl::staging::AsyncStaging;
use dtl::{ChunkCodec, VariableSpec};
use ensemble_core::{ComponentRef, StageKind};
use kernels::analysis::FrameKernel;
use kernels::md::MdSimulation;
use metrics::{ExecutionTrace, TraceRecorder};

use crate::error::{RuntimeError, RuntimeResult};
use crate::frame_codec::FrameCodec;
use crate::thread_exec::ThreadRunConfig;

/// What an in-transit run produces.
#[derive(Debug)]
pub struct InTransitExecution {
    /// Stage trace (wall-clock seconds from run start). Analyze stages
    /// carry the *frame* step they processed, so gaps mark lost frames.
    pub trace: ExecutionTrace,
    /// Collective-variable series per analysis, keyed by frame step.
    pub cv_series: HashMap<ComponentRef, Vec<(u64, f64)>>,
    /// Frames dropped per member.
    pub lost_frames: Vec<u64>,
    /// Frames produced per member.
    pub produced_frames: Vec<u64>,
}

/// Runs the ensemble with real kernels under in-transit coupling.
/// `cfg.staging_capacity` is the retained-frame queue depth.
pub fn run_threaded_in_transit(cfg: &ThreadRunConfig) -> RuntimeResult<InTransitExecution> {
    cfg.spec.validate(None)?;
    if cfg.n_steps == 0 {
        return Err(RuntimeError::NoSamples);
    }
    let staging = Arc::new(AsyncStaging::new(cfg.staging_capacity.max(1) as usize));
    let recorder = TraceRecorder::new();
    let epoch = Instant::now();

    let mut variables = Vec::with_capacity(cfg.spec.members.len());
    for (i, member) in cfg.spec.members.iter().enumerate() {
        let home_node = *member.simulation.nodes.iter().next().ok_or_else(|| {
            RuntimeError::Model(ensemble_core::ModelError::EmptyNodeSet {
                member: i,
                component: "simulation".into(),
            })
        })?;
        variables.push(staging.register(VariableSpec {
            name: format!("trajectory/member{i}"),
            expected_readers: member.k() as u32,
            home_node,
        })?);
    }

    type Harvest = (ComponentRef, Vec<(u64, f64)>);
    let harvested: RuntimeResult<Vec<Harvest>> = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, member) in cfg.spec.members.iter().enumerate() {
            let var = variables[i];
            let home_node = *member.simulation.nodes.iter().next().expect("validated");
            // --- Free-running simulation worker. ---
            {
                let staging = Arc::clone(&staging);
                let recorder = recorder.clone();
                let mut md_cfg = cfg.md.clone();
                md_cfg.seed = cfg.md.seed.wrapping_add(i as u64);
                let n_steps = cfg.n_steps;
                let sim_ref = ComponentRef::simulation(i);
                handles.push((
                    sim_ref,
                    scope.spawn(move |_| -> RuntimeResult<Vec<(u64, f64)>> {
                        let mut sim = MdSimulation::new(&md_cfg);
                        let codec = FrameCodec;
                        for step in 0..n_steps {
                            let t0 = epoch.elapsed().as_secs_f64();
                            let frame = sim.advance_stride();
                            let t1 = epoch.elapsed().as_secs_f64();
                            recorder.record(sim_ref, StageKind::Simulate, step, t0, t1);
                            let chunk = dtl::Chunk::new(
                                var,
                                step,
                                home_node,
                                codec.encoding(),
                                codec.encode(&frame),
                            );
                            staging.put(chunk)?;
                            let t2 = epoch.elapsed().as_secs_f64();
                            recorder.record(sim_ref, StageKind::Write, step, t1, t2);
                        }
                        staging.finish(var)?;
                        Ok(Vec::new())
                    }),
                ));
            }
            // --- Analysis workers draining the queue. ---
            for j in 1..=member.k() {
                let ana_ref = ComponentRef::analysis(i, j);
                let staging = Arc::clone(&staging);
                let recorder = recorder.clone();
                let timeout = cfg.timeout;
                let choice =
                    cfg.kernel.clone().unwrap_or(crate::thread_exec::KernelChoice::Eigen {
                        group: cfg.analysis_group_size,
                        sigma: cfg.analysis_sigma,
                    });
                handles.push((
                    ana_ref,
                    scope.spawn(move |_| -> RuntimeResult<Vec<(u64, f64)>> {
                        let reader = ReaderId(j as u32 - 1);
                        let codec = FrameCodec;
                        let mut kernel: Option<Box<dyn FrameKernel>> = None;
                        let mut series = Vec::new();
                        loop {
                            let t0 = epoch.elapsed().as_secs_f64();
                            let Some(chunk) = staging.next(var, reader, timeout)? else {
                                break;
                            };
                            let t1 = epoch.elapsed().as_secs_f64();
                            let frame_step = chunk.id.step;
                            if t1 > t0 {
                                recorder.record(ana_ref, StageKind::AnaIdle, frame_step, t0, t1);
                            }
                            let frame = codec.decode(chunk.data)?;
                            let t2 = epoch.elapsed().as_secs_f64();
                            recorder.record(ana_ref, StageKind::Read, frame_step, t1, t2);
                            let k = kernel.get_or_insert_with(|| choice.build(frame.num_atoms()));
                            let cv = k.compute(&frame);
                            let t3 = epoch.elapsed().as_secs_f64();
                            recorder.record(ana_ref, StageKind::Analyze, frame_step, t2, t3);
                            series.push((frame_step, cv));
                        }
                        Ok(series)
                    }),
                ));
            }
        }
        let mut out = Vec::new();
        for (cref, handle) in handles {
            match handle.join() {
                Ok(Ok(series)) => out.push((cref, series)),
                Ok(Err(e)) => return Err(e),
                Err(_) => return Err(RuntimeError::WorkerPanicked { component: cref.to_string() }),
            }
        }
        Ok(out)
    })
    .map_err(|_| RuntimeError::WorkerPanicked { component: "scope".into() })?;

    let harvested = harvested?;
    let mut cv_series = HashMap::new();
    for (cref, series) in harvested {
        if !cref.is_simulation() {
            cv_series.insert(cref, series);
        }
    }
    let lost_frames: Vec<u64> = variables.iter().map(|&v| staging.lost_frames(v)).collect();
    let produced_frames: Vec<u64> = variables.iter().map(|&v| staging.produced_frames(v)).collect();
    staging.close();
    Ok(InTransitExecution { trace: recorder.into_trace(), cv_series, lost_frames, produced_frames })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemble_core::ConfigId;
    use kernels::md::MdConfig;
    use std::time::Duration;

    fn quick(steps: u64, capacity: u64) -> ThreadRunConfig {
        ThreadRunConfig {
            spec: ConfigId::Cc.build(),
            md: MdConfig { atoms_per_side: 4, stride: 5, ..Default::default() },
            analysis_group_size: 16,
            analysis_sigma: 1.0,
            n_steps: steps,
            staging_capacity: capacity,
            timeout: Duration::from_secs(60),
            kernel: None,
            fault_plan: None,
            retry: None,
            restart: None,
        }
    }

    #[test]
    fn frames_are_conserved() {
        let exec = run_threaded_in_transit(&quick(6, 2)).unwrap();
        let ana = ComponentRef::analysis(0, 1);
        let consumed = exec.cv_series[&ana].len() as u64;
        assert_eq!(exec.produced_frames[0], 6);
        assert!(consumed + exec.lost_frames[0] >= 6 - 2, "retained frames bounded by queue");
        assert!(consumed >= 1);
        // Frame steps strictly increase.
        let steps: Vec<u64> = exec.cv_series[&ana].iter().map(|(s, _)| *s).collect();
        assert!(steps.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn slow_analysis_drops_frames_but_finishes() {
        // 512-atom bipartite analysis vs tiny MD steps → analysis slower
        // than production; with queue depth 1 frames must drop.
        let mut cfg = quick(12, 1);
        cfg.analysis_group_size = 32;
        cfg.md.stride = 1; // produce frames as fast as possible
        let exec = run_threaded_in_transit(&cfg).unwrap();
        assert_eq!(exec.produced_frames[0], 12);
        let consumed = exec.cv_series[&ComponentRef::analysis(0, 1)].len() as u64;
        assert!(consumed >= 1);
        assert!(
            consumed + exec.lost_frames[0] <= 12,
            "consumed {consumed} + lost {} must not exceed produced",
            exec.lost_frames[0]
        );
    }

    #[test]
    fn simulation_never_idles_in_transit() {
        let exec = run_threaded_in_transit(&quick(5, 1)).unwrap();
        let sim_idle = exec.trace.total_in_stage(ComponentRef::simulation(0), StageKind::SimIdle);
        assert_eq!(sim_idle, 0.0);
    }

    #[test]
    fn zero_steps_rejected() {
        assert!(run_threaded_in_transit(&quick(0, 1)).is_err());
    }

    #[test]
    fn members_lose_frames_independently() {
        // Four members with per-member queues: every member produces all
        // of its frames and each member's loss accounting closes on its
        // own, regardless of what its neighbors dropped.
        let mut cfg = quick(8, 2);
        cfg.spec = ensemble_core::EnsembleSpec::new(
            (0..4)
                .map(|node| {
                    ensemble_core::MemberSpec::new(
                        ensemble_core::ComponentSpec::simulation(16, node),
                        vec![ensemble_core::ComponentSpec::analysis(8, node)],
                    )
                })
                .collect(),
        );
        let exec = run_threaded_in_transit(&cfg).unwrap();
        for member in 0..4 {
            assert_eq!(exec.produced_frames[member], 8, "member {member}");
            let consumed = exec.cv_series[&ComponentRef::analysis(member, 1)].len() as u64;
            assert!(consumed >= 1, "member {member} must consume something");
            assert!(
                consumed + exec.lost_frames[member] <= 8,
                "member {member}: consumed {consumed} + lost {} > produced",
                exec.lost_frames[member]
            );
        }
    }
}
