//! Automated performance diagnostics over ensemble reports.
//!
//! The paper's motivation (§2.3): "to identify stragglers among the
//! members one would need to diligently inspect and relate the
//! independent measurements." This module automates that inspection —
//! it relates the model quantities the report already carries and emits
//! typed findings with plain-language explanations.

use ensemble_core::CouplingScenario;
use metrics::EnsembleReport;
use serde::{Deserialize, Serialize};

/// Severity of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Informational observation.
    Info,
    /// Measurable inefficiency worth attention.
    Warning,
    /// Dominant cause of ensemble slowdown.
    Critical,
}

/// One diagnostic finding.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Finding {
    /// How serious it is.
    pub severity: Severity,
    /// Machine-readable kind.
    pub kind: FindingKind,
    /// Member the finding concerns (None = ensemble-wide).
    pub member: Option<usize>,
    /// Human-readable explanation with numbers.
    pub detail: String,
}

/// The kinds of findings the analyzer emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FindingKind {
    /// A member's makespan dominates the ensemble makespan.
    StragglerMember,
    /// A coupling where the simulation waits on a slow analysis.
    AnalysisBottleneck,
    /// A member burning efficiency on idle analyses.
    OverProvisionedAnalysis,
    /// Low placement indicator: components spread over many nodes.
    ScatteredPlacement,
    /// Frames were dropped (in-transit runs).
    LostFrames,
    /// Eq. 2's model disagrees with the measured makespan.
    ModelDivergence,
    /// Everything looks healthy.
    Healthy,
}

/// Thresholds of the analyzer.
#[derive(Debug, Clone)]
pub struct DiagnosticConfig {
    /// A member is a straggler when its makespan exceeds the best
    /// member's by this fraction.
    pub straggler_fraction: f64,
    /// An analysis is over-provisioned when its coupling efficiency
    /// contribution (busy/σ̄*) falls below this.
    pub idle_fraction: f64,
    /// CP below this flags a scattered placement.
    pub scattered_cp: f64,
    /// Relative Eq. 2 divergence that flags the model.
    pub model_divergence: f64,
}

impl Default for DiagnosticConfig {
    fn default() -> Self {
        DiagnosticConfig {
            straggler_fraction: 0.05,
            idle_fraction: 0.5,
            scattered_cp: 0.6,
            model_divergence: 0.10,
        }
    }
}

/// Analyzes a report and returns findings ordered most-severe first.
pub fn diagnose(report: &EnsembleReport, config: &DiagnosticConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    let best_makespan = report.members.iter().map(|m| m.makespan).fold(f64::INFINITY, f64::min);

    for m in &report.members {
        let label = m.member + 1;
        // Stragglers.
        if report.members.len() > 1
            && m.makespan > best_makespan * (1.0 + config.straggler_fraction)
        {
            findings.push(Finding {
                severity: Severity::Critical,
                kind: FindingKind::StragglerMember,
                member: Some(m.member),
                detail: format!(
                    "member {label} finishes in {:.1}s, {:.1}% behind the fastest member \
                     ({best_makespan:.1}s); the ensemble makespan is pinned to it",
                    m.makespan,
                    (m.makespan / best_makespan - 1.0) * 100.0
                ),
            });
        }
        // Coupling analysis.
        let sigma = m.sigma_star;
        for (j, scenario) in m.scenarios.iter().enumerate() {
            let busy = m.stage_times.analyses[j].busy();
            match scenario {
                CouplingScenario::IdleSimulation => {
                    // Quantify the fix with the what-if model: how much
                    // faster must this analysis get to stop dominating?
                    let needed = ensemble_core::factor_to_unblock(&m.stage_times, j)
                        .map(|f| {
                            format!(
                                "its A* must shrink to {:.0}% (≈ {:.1}x more effective cores)",
                                f * 100.0,
                                1.0 / f.max(1e-9)
                            )
                        })
                        .unwrap_or_else(|| {
                            "even a zero-cost analysis would still dominate via R*".into()
                        });
                    findings.push(Finding {
                        severity: Severity::Warning,
                        kind: FindingKind::AnalysisBottleneck,
                        member: Some(m.member),
                        detail: format!(
                            "member {label}, analysis {}: R*+A* = {busy:.2}s exceeds the \
                             simulation's S*+W* = {:.2}s — the simulation idles every step; \
                             to satisfy Eq. 4, {needed}",
                            j + 1,
                            m.stage_times.sim_busy()
                        ),
                    });
                }
                CouplingScenario::IdleAnalyzer => {
                    if busy / sigma < config.idle_fraction {
                        findings.push(Finding {
                            severity: Severity::Info,
                            kind: FindingKind::OverProvisionedAnalysis,
                            member: Some(m.member),
                            detail: format!(
                                "member {label}, analysis {}: busy only {:.0}% of the in situ \
                                 step — cores could be reclaimed without hurting the makespan",
                                j + 1,
                                busy / sigma * 100.0
                            ),
                        });
                    }
                }
                CouplingScenario::Balanced => {}
            }
        }
        // Placement.
        if m.cp < config.scattered_cp {
            findings.push(Finding {
                severity: Severity::Warning,
                kind: FindingKind::ScatteredPlacement,
                member: Some(m.member),
                detail: format!(
                    "member {label}: placement indicator CP = {:.2} — components spread over \
                     dedicated nodes; co-locating them raises P^(U,A) (paper §4.3)",
                    m.cp
                ),
            });
        }
        // Lost frames.
        if m.lost_frames > 0 {
            findings.push(Finding {
                severity: Severity::Warning,
                kind: FindingKind::LostFrames,
                member: Some(m.member),
                detail: format!(
                    "member {label} dropped {} of {} frames under in-transit backpressure",
                    m.lost_frames, report.n_steps
                ),
            });
        }
        // Model agreement.
        if m.makespan > 0.0 {
            let divergence = (m.makespan_model - m.makespan).abs() / m.makespan;
            if divergence > config.model_divergence {
                findings.push(Finding {
                    severity: Severity::Info,
                    kind: FindingKind::ModelDivergence,
                    member: Some(m.member),
                    detail: format!(
                        "member {label}: Eq. 2 predicts {:.1}s vs measured {:.1}s \
                         ({:.0}% divergence) — steady state may not have been reached",
                        m.makespan_model,
                        m.makespan,
                        divergence * 100.0
                    ),
                });
            }
        }
    }

    if findings.is_empty() {
        findings.push(Finding {
            severity: Severity::Info,
            kind: FindingKind::Healthy,
            member: None,
            detail: "all members balanced, co-located, and steady".into(),
        });
    }
    findings.sort_by_key(|f| std::cmp::Reverse(f.severity));
    findings
}

/// Renders findings as a bullet list.
pub fn render_findings(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let tag = match f.severity {
            Severity::Critical => "CRITICAL",
            Severity::Warning => "warning ",
            Severity::Info => "info    ",
        };
        out.push_str(&format!("[{tag}] {}\n", f.detail));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::EnsembleRunner;
    use ensemble_core::{ComponentRef, ConfigId};

    fn quick(id: ConfigId) -> EnsembleRunner {
        EnsembleRunner::paper_config(id).small_scale().steps(8).jitter(0.0)
    }

    #[test]
    fn healthy_run_reports_healthy() {
        let report = quick(ConfigId::C1_5).run().unwrap();
        let findings = diagnose(&report, &DiagnosticConfig::default());
        assert!(
            findings.iter().any(|f| f.kind == FindingKind::Healthy)
                || findings.iter().all(|f| f.severity == Severity::Info),
            "{findings:#?}"
        );
    }

    #[test]
    fn straggler_is_detected() {
        let mut runner = quick(ConfigId::C1_5);
        let mut slow =
            runner.config_mut().workloads.workload_for(ComponentRef::simulation(1)).clone();
        slow.instructions_per_step *= 2.0;
        runner.config_mut().workloads.set_override(ComponentRef::simulation(1), slow);
        let report = runner.run().unwrap();
        let findings = diagnose(&report, &DiagnosticConfig::default());
        let straggler = findings
            .iter()
            .find(|f| f.kind == FindingKind::StragglerMember)
            .expect("straggler finding");
        assert_eq!(straggler.member, Some(1));
        assert_eq!(straggler.severity, Severity::Critical);
        assert_eq!(findings[0].severity, Severity::Critical, "sorted most-severe first");
    }

    #[test]
    fn analysis_bottleneck_is_detected() {
        let mut runner = quick(ConfigId::Cf);
        let mut heavy =
            runner.config_mut().workloads.workload_for(ComponentRef::analysis(0, 1)).clone();
        heavy.instructions_per_step *= 3.0;
        runner.config_mut().workloads.set_override(ComponentRef::analysis(0, 1), heavy);
        let report = runner.run().unwrap();
        let findings = diagnose(&report, &DiagnosticConfig::default());
        assert!(findings.iter().any(|f| f.kind == FindingKind::AnalysisBottleneck));
    }

    #[test]
    fn over_provisioned_analysis_is_detected() {
        let mut runner = quick(ConfigId::Cf);
        let mut light =
            runner.config_mut().workloads.workload_for(ComponentRef::analysis(0, 1)).clone();
        light.instructions_per_step *= 0.1;
        runner.config_mut().workloads.set_override(ComponentRef::analysis(0, 1), light);
        let report = runner.run().unwrap();
        let findings = diagnose(&report, &DiagnosticConfig::default());
        assert!(findings.iter().any(|f| f.kind == FindingKind::OverProvisionedAnalysis));
    }

    #[test]
    fn scattered_placement_is_flagged() {
        let report = quick(ConfigId::C1_1).run().unwrap();
        let findings = diagnose(&report, &DiagnosticConfig::default());
        assert!(
            findings.iter().any(|f| f.kind == FindingKind::ScatteredPlacement),
            "C1.1's CP = 0.5 should flag: {findings:#?}"
        );
    }

    #[test]
    fn rendering_contains_tags() {
        let report = quick(ConfigId::C1_1).run().unwrap();
        let text = render_findings(&diagnose(&report, &DiagnosticConfig::default()));
        assert!(text.contains('['));
        assert!(!text.trim().is_empty());
    }
}
