//! Assigns architectural workloads to ensemble components for the
//! simulated execution mode.

use ensemble_core::{ComponentRef, EnsembleSpec};
use hpc_platform::Workload;
use kernels::profile;
use std::collections::HashMap;

/// Maps components to their [`Workload`] profiles and chunk sizes.
#[derive(Debug, Clone)]
pub struct WorkloadMap {
    sim_default: Workload,
    analysis_default: Workload,
    overrides: HashMap<ComponentRef, Workload>,
    /// Bytes of the frame chunk each simulation stages per in situ step.
    pub chunk_bytes: u64,
}

impl WorkloadMap {
    /// The paper's workloads: GROMACS-like simulation at `stride`,
    /// eigenvalue analyses, GltPh-sized frames.
    pub fn paper_defaults(stride: u64) -> Self {
        WorkloadMap {
            sim_default: profile::simulation_workload(stride),
            analysis_default: profile::analysis_workload(),
            overrides: HashMap::new(),
            chunk_bytes: profile::frame_bytes(profile::GLTPH_ATOMS),
        }
    }

    /// Laptop-scale workloads with the same contention shapes (fast
    /// tests).
    pub fn small_defaults() -> Self {
        WorkloadMap {
            sim_default: profile::small_simulation_workload(),
            analysis_default: profile::small_analysis_workload(),
            overrides: HashMap::new(),
            chunk_bytes: profile::frame_bytes(1000),
        }
    }

    /// Overrides the workload of one component (e.g. a straggler for
    /// failure-injection experiments).
    pub fn set_override(&mut self, component: ComponentRef, workload: Workload) {
        self.overrides.insert(component, workload);
    }

    /// The workload of `component`.
    pub fn workload_for(&self, component: ComponentRef) -> &Workload {
        self.overrides.get(&component).unwrap_or(if component.is_simulation() {
            &self.sim_default
        } else {
            &self.analysis_default
        })
    }

    /// A canonical, deterministic description of this map, suitable as a
    /// cache-key component. Two maps with equal contents always produce
    /// byte-identical fingerprints: the `overrides` HashMap is serialized
    /// in sorted `ComponentRef` order, never in hash-iteration order
    /// (which varies between otherwise-identical maps and would silently
    /// turn any cache keyed on it into a miss machine).
    pub fn canonical_fingerprint(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "sim={:?}|ana={:?}|chunk={}",
            self.sim_default, self.analysis_default, self.chunk_bytes
        );
        let mut overrides: Vec<_> = self.overrides.iter().collect();
        overrides.sort_by_key(|(c, _)| **c);
        for (c, w) in overrides {
            let _ = write!(out, "|ov[{},{}]={:?}", c.member, c.slot, w);
        }
        out
    }

    /// Enumerates `(component, workload)` for every component of `spec`,
    /// members in order, simulation before analyses.
    pub fn assignments(&self, spec: &EnsembleSpec) -> Vec<(ComponentRef, Workload)> {
        let mut out = Vec::new();
        for (i, member) in spec.members.iter().enumerate() {
            let sim = ComponentRef::simulation(i);
            out.push((sim, self.workload_for(sim).clone()));
            for j in 1..=member.k() {
                let ana = ComponentRef::analysis(i, j);
                out.push((ana, self.workload_for(ana).clone()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemble_core::ConfigId;

    #[test]
    fn defaults_split_by_kind() {
        let map = WorkloadMap::paper_defaults(800);
        let sim = map.workload_for(ComponentRef::simulation(0));
        let ana = map.workload_for(ComponentRef::analysis(0, 1));
        assert!(sim.instructions_per_step > ana.instructions_per_step);
        assert!(ana.llc_refs_per_instr > sim.llc_refs_per_instr);
    }

    #[test]
    fn override_wins() {
        let mut map = WorkloadMap::small_defaults();
        let mut slow = map.workload_for(ComponentRef::analysis(0, 1)).clone();
        slow.instructions_per_step *= 10.0;
        map.set_override(ComponentRef::analysis(0, 1), slow.clone());
        assert_eq!(map.workload_for(ComponentRef::analysis(0, 1)), &slow);
        // Other analyses unaffected.
        assert_ne!(map.workload_for(ComponentRef::analysis(1, 1)), &slow);
    }

    #[test]
    fn assignments_cover_every_component() {
        let spec = ConfigId::C2_3.build();
        let map = WorkloadMap::paper_defaults(800);
        let a = map.assignments(&spec);
        assert_eq!(a.len(), 6, "2 members × (1 sim + 2 analyses)");
        assert!(a[0].0.is_simulation());
        assert!(!a[1].0.is_simulation());
    }

    #[test]
    fn fingerprint_is_independent_of_override_insertion_order() {
        // Two maps with the same overrides inserted in different orders
        // hold HashMaps with different internal layouts — the
        // fingerprint must not leak that.
        let refs = [
            ComponentRef::analysis(3, 2),
            ComponentRef::simulation(0),
            ComponentRef::analysis(1, 1),
        ];
        let mut slow = WorkloadMap::small_defaults().workload_for(refs[0]).clone();
        slow.instructions_per_step *= 7.0;
        let mut forward = WorkloadMap::small_defaults();
        for r in refs {
            forward.set_override(r, slow.clone());
        }
        let mut backward = WorkloadMap::small_defaults();
        for r in refs.iter().rev() {
            backward.set_override(*r, slow.clone());
        }
        assert_eq!(forward.canonical_fingerprint(), backward.canonical_fingerprint());
        // And the overrides actually participate.
        assert_ne!(
            forward.canonical_fingerprint(),
            WorkloadMap::small_defaults().canonical_fingerprint()
        );
    }

    #[test]
    fn chunk_bytes_positive() {
        assert!(WorkloadMap::paper_defaults(800).chunk_bytes > 1_000_000);
        assert!(WorkloadMap::small_defaults().chunk_bytes > 0);
    }
}
