//! One function per paper artifact: each returns the rows/series the
//! paper reports, computed by running the configurations on the
//! simulated platform at paper scale.

use ensemble_core::{aggregate, Aggregation, ConfigId, IndicatorPath, MemberInputs};
use metrics::EnsembleReport;
use runtime::{EnsembleRunner, RuntimeResult};
use serde::{Deserialize, Serialize};

/// Trials per configuration (the paper averages over 5).
pub const TRIALS: u64 = 5;
/// In situ steps per run (30 000 MD steps / stride 800, as in the
/// paper).
pub const STEPS: u64 = 37;

/// Runs one configuration at paper scale, averaged over [`TRIALS`]
/// seeds, returning all trial reports.
pub fn run_config(id: ConfigId) -> RuntimeResult<Vec<EnsembleReport>> {
    EnsembleRunner::paper_config(id).steps(STEPS).jitter(0.01).run_trials(TRIALS)
}

/// A component row of Figure 3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Row {
    /// Configuration label.
    pub config: String,
    /// Component name ("Sim1", "Ana2.1", …).
    pub component: String,
    /// Mean execution time across trials, seconds.
    pub execution_time: f64,
    /// Mean LLC miss ratio.
    pub llc_miss_ratio: f64,
    /// Mean memory intensity (misses/instruction).
    pub memory_intensity: f64,
    /// Mean instructions per cycle.
    pub ipc: f64,
}

/// Figure 3: component-level traditional metrics for the set-one
/// configurations.
pub fn fig3_component_metrics() -> RuntimeResult<Vec<Fig3Row>> {
    let mut rows = Vec::new();
    for id in ConfigId::set_one() {
        let reports = run_config(id)?;
        // Average each component across trials.
        let component_count: Vec<usize> =
            reports[0].members.iter().map(|m| m.components.len()).collect();
        for (mi, &n_components) in component_count.iter().enumerate() {
            for ci in 0..n_components {
                let mut exec = 0.0;
                let mut miss = 0.0;
                let mut intensity = 0.0;
                let mut ipc = 0.0;
                for r in &reports {
                    let c = &r.members[mi].components[ci];
                    exec += c.metrics.execution_time;
                    miss += c.metrics.llc_miss_ratio;
                    intensity += c.metrics.memory_intensity;
                    ipc += c.metrics.ipc;
                }
                let n = reports.len() as f64;
                rows.push(Fig3Row {
                    config: id.label().to_string(),
                    component: reports[0].members[mi].components[ci].name.clone(),
                    execution_time: exec / n,
                    llc_miss_ratio: miss / n,
                    memory_intensity: intensity / n,
                    ipc: ipc / n,
                });
            }
        }
    }
    Ok(rows)
}

/// A makespan row of Figures 4 and 5.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MakespanRow {
    /// Configuration label.
    pub config: String,
    /// Mean member makespans, seconds, in member order (Figure 4).
    pub member_makespans: Vec<f64>,
    /// Mean ensemble makespan, seconds (Figure 5).
    pub ensemble_makespan: f64,
}

/// Figures 4 and 5: member and ensemble makespans for set one.
pub fn fig45_makespans() -> RuntimeResult<Vec<MakespanRow>> {
    let mut rows = Vec::new();
    for id in ConfigId::set_one() {
        let reports = run_config(id)?;
        let n_members = reports[0].members.len();
        let n = reports.len() as f64;
        let member_makespans = (0..n_members)
            .map(|mi| reports.iter().map(|r| r.members[mi].makespan).sum::<f64>() / n)
            .collect();
        let ensemble_makespan = reports.iter().map(|r| r.ensemble_makespan).sum::<f64>() / n;
        rows.push(MakespanRow {
            config: id.label().to_string(),
            member_makespans,
            ensemble_makespan,
        });
    }
    Ok(rows)
}

/// Figure 7: the analysis-core sweep (σ̄*, S*+W*, R*+A*, E vs cores).
pub fn fig7_core_sweep() -> RuntimeResult<scheduler::SweepResult> {
    let mut cfg = scheduler::CoreSweepConfig::paper();
    cfg.candidate_cores = vec![1, 2, 4, 8, 12, 16, 20, 24, 28, 32];
    cfg.steps = 8;
    scheduler::core_sweep(&cfg)
}

/// One bar of Figures 8/9: `F(P)` for one configuration at one
/// indicator stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IndicatorRow {
    /// Configuration label.
    pub config: String,
    /// Stage-path label ("U", "U,P", "U,A", "U,P,A", "U,A,P").
    pub path: String,
    /// Mean `F(P)` across trials.
    pub objective: f64,
}

/// The five stage paths of §5.2 (both concatenation orders).
pub fn stage_paths() -> Vec<IndicatorPath> {
    vec![
        IndicatorPath::u(),
        IndicatorPath::up(),
        IndicatorPath::ua(),
        IndicatorPath::upa(),
        IndicatorPath::uap(),
    ]
}

/// Computes `F(P)` for every stage path over the given configurations —
/// Figure 8 with [`ConfigId::set_one_pairs`], Figure 9 with
/// [`ConfigId::set_two`].
pub fn indicator_objectives(configs: &[ConfigId]) -> RuntimeResult<Vec<IndicatorRow>> {
    let mut rows = Vec::new();
    for &id in configs {
        let spec = id.build();
        let reports = run_config(id)?;
        for path in stage_paths() {
            let mut acc = 0.0;
            for report in &reports {
                let values: Vec<f64> = report
                    .members
                    .iter()
                    .zip(&spec.members)
                    .map(|(mr, ms)| {
                        let inputs = MemberInputs::from_specs(ms, &spec, mr.efficiency);
                        ensemble_core::indicator(&inputs, &path)
                    })
                    .collect();
                acc += aggregate(&values, Aggregation::MeanMinusStd);
            }
            rows.push(IndicatorRow {
                config: id.label().to_string(),
                path: path.label(),
                objective: acc / reports.len() as f64,
            });
        }
    }
    Ok(rows)
}

/// Figure 8: set one (C1.1–C1.5).
pub fn fig8_indicators() -> RuntimeResult<Vec<IndicatorRow>> {
    indicator_objectives(&ConfigId::set_one_pairs())
}

/// Figure 9: set two (C2.1–C2.8).
pub fn fig9_indicators() -> RuntimeResult<Vec<IndicatorRow>> {
    indicator_objectives(&ConfigId::set_two())
}

/// One row of the in-transit extension experiment: lost frames and
/// simulation stall as functions of queue depth and analysis load.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LostFramesRow {
    /// In-transit queue depth (0 = the paper's synchronous protocol).
    pub queue_capacity: usize,
    /// Analysis work multiplier relative to the paper's kernel.
    pub analysis_scale: f64,
    /// Frames produced.
    pub produced: u64,
    /// Frames lost.
    pub lost: u64,
    /// Simulation idle seconds over the whole run.
    pub sim_idle_seconds: f64,
    /// Simulation completion time, seconds.
    pub sim_finish_seconds: f64,
}

/// Extension experiment (after Taufer et al. \[26\]): sweep queue depths
/// and analysis loads under in-transit coupling; the synchronous
/// protocol appears as the zero row of each load.
pub fn ext_lost_frames() -> RuntimeResult<Vec<LostFramesRow>> {
    use ensemble_core::{ComponentRef, StageKind};
    use runtime::{run_simulated, CouplingMode, SimRunConfig};
    let mut rows = Vec::new();
    for &scale in &[1.0f64, 1.5, 2.5] {
        for &capacity in &[0usize, 1, 2, 4] {
            let mut cfg = SimRunConfig::paper(ConfigId::Cf.build());
            cfg.n_steps = STEPS;
            cfg.jitter = 0.0;
            let mut heavy = cfg.workloads.workload_for(ComponentRef::analysis(0, 1)).clone();
            heavy.instructions_per_step *= scale;
            cfg.workloads.set_override(ComponentRef::analysis(0, 1), heavy);
            cfg.coupling = if capacity == 0 {
                CouplingMode::Synchronous
            } else {
                CouplingMode::Asynchronous { queue_capacity: capacity }
            };
            let exec = run_simulated(&cfg)?;
            let sim = ComponentRef::simulation(0);
            rows.push(LostFramesRow {
                queue_capacity: capacity,
                analysis_scale: scale,
                produced: STEPS,
                lost: exec.lost_frames[0],
                sim_idle_seconds: exec.trace.total_in_stage(sim, StageKind::SimIdle),
                sim_finish_seconds: exec
                    .trace
                    .component_span(sim)
                    .map(|(_, e)| e)
                    .unwrap_or_default(),
            });
        }
    }
    Ok(rows)
}

/// Helper: the `F` value of one config under one path, from fresh runs.
pub fn objective_of(id: ConfigId, path: &IndicatorPath) -> RuntimeResult<f64> {
    let spec = id.build();
    let report = EnsembleRunner::paper_config(id).steps(STEPS).jitter(0.0).run()?;
    let values: Vec<f64> = report
        .members
        .iter()
        .zip(&spec.members)
        .map(|(mr, ms)| {
            let inputs = MemberInputs::from_specs(ms, &spec, mr.efficiency);
            ensemble_core::indicator(&inputs, path)
        })
        .collect();
    Ok(aggregate(&values, Aggregation::MeanMinusStd))
}

#[cfg(test)]
mod tests {
    use super::*;

    // Experiment-harness smoke tests run at reduced scale; the full
    // paper-scale assertions live in the workspace integration tests.

    #[test]
    fn fig7_recommends_eight_cores() {
        let sweep = fig7_core_sweep().unwrap();
        assert_eq!(sweep.recommended_cores, 8);
        assert_eq!(sweep.points.len(), 10);
    }

    #[test]
    fn objective_ranks_c15_over_c14() {
        let path = IndicatorPath::uap();
        let c15 = objective_of(ConfigId::C1_5, &path).unwrap();
        let c14 = objective_of(ConfigId::C1_4, &path).unwrap();
        assert!(c15 > c14, "C1.5 ({c15}) must beat C1.4 ({c14}) at the full indicator");
    }
}
