//! Plain-text rendering of experiment results: the same rows/series the
//! paper's tables and figures report.

use ensemble_core::ConfigId;

use crate::experiments::{Fig3Row, IndicatorRow, MakespanRow};

/// Renders Table 2 / Table 4 (configuration definitions).
pub fn render_config_table(configs: &[ConfigId]) -> String {
    let mut out = String::from(
        "Configuration | nodes | members | placements (sim -> node, analyses -> nodes)\n",
    );
    out.push_str(&"-".repeat(78));
    out.push('\n');
    for &id in configs {
        let spec = id.build();
        let mut placements = Vec::new();
        for (i, m) in spec.members.iter().enumerate() {
            let sim =
                m.simulation.nodes.iter().map(|n| format!("n{n}")).collect::<Vec<_>>().join("+");
            let anas = m
                .analyses
                .iter()
                .map(|a| a.nodes.iter().map(|n| format!("n{n}")).collect::<Vec<_>>().join("+"))
                .collect::<Vec<_>>()
                .join(", ");
            placements.push(format!("EM{}: Sim@{sim} Ana@[{anas}]", i + 1));
        }
        out.push_str(&format!(
            "{:<13} | {:>5} | {:>7} | {}\n",
            id.label(),
            spec.num_nodes(),
            spec.n(),
            placements.join("; ")
        ));
    }
    out
}

/// Renders Figure 3's rows.
pub fn render_fig3(rows: &[Fig3Row]) -> String {
    let mut out =
        String::from("config  component  exec_time(s)  llc_miss_ratio  mem_intensity  ipc\n");
    out.push_str(&"-".repeat(70));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<7} {:<10} {:>12.2} {:>15.4} {:>14.3e} {:>6.3}\n",
            r.config, r.component, r.execution_time, r.llc_miss_ratio, r.memory_intensity, r.ipc
        ));
    }
    out
}

/// Renders Figures 4 and 5.
pub fn render_fig45(rows: &[MakespanRow]) -> String {
    let mut out = String::from("config  member makespans (s)          ensemble makespan (s)\n");
    out.push_str(&"-".repeat(64));
    out.push('\n');
    for r in rows {
        let members =
            r.member_makespans.iter().map(|m| format!("{m:.1}")).collect::<Vec<_>>().join(", ");
        out.push_str(&format!("{:<7} {:<29} {:>12.1}\n", r.config, members, r.ensemble_makespan));
    }
    out
}

/// Renders Figure 7's series.
pub fn render_fig7(sweep: &scheduler::SweepResult) -> String {
    let mut out = String::from("analysis_cores  S*+W*(s)  R*+A*(s)  sigma*(s)  efficiency  Eq.4\n");
    out.push_str(&"-".repeat(64));
    out.push('\n');
    for p in &sweep.points {
        out.push_str(&format!(
            "{:>14} {:>9.2} {:>9.2} {:>10.2} {:>11.4}  {}\n",
            p.analysis_cores,
            p.sim_busy,
            p.ana_busy,
            p.sigma_star,
            p.efficiency,
            if p.satisfies_eq4 { "yes" } else { "no" }
        ));
    }
    out.push_str(&format!("=> heuristic selects {} cores per analysis\n", sweep.recommended_cores));
    out
}

/// Renders Figures 8/9: `F(P)` per configuration per stage path.
pub fn render_indicators(rows: &[IndicatorRow]) -> String {
    // Pivot: one line per config, one column per path.
    let mut paths: Vec<String> = Vec::new();
    for r in rows {
        if !paths.contains(&r.path) {
            paths.push(r.path.clone());
        }
    }
    let mut configs: Vec<String> = Vec::new();
    for r in rows {
        if !configs.contains(&r.config) {
            configs.push(r.config.clone());
        }
    }
    let mut out = format!("{:<8}", "config");
    for p in &paths {
        out.push_str(&format!("  F(P^{{{p}}})    "));
    }
    out.push('\n');
    out.push_str(&"-".repeat(8 + paths.len() * 15));
    out.push('\n');
    for c in &configs {
        out.push_str(&format!("{c:<8}"));
        for p in &paths {
            let v = rows
                .iter()
                .find(|r| &r.config == c && &r.path == p)
                .map(|r| r.objective)
                .unwrap_or(f64::NAN);
            out.push_str(&format!("  {v:>12.4e} "));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_table_lists_all() {
        let table = render_config_table(&ConfigId::set_one());
        assert!(table.contains("C1.5"));
        assert!(table.contains("C_f"));
        assert_eq!(table.lines().count(), 2 + 7);
    }

    #[test]
    fn fig45_rendering() {
        let rows = vec![MakespanRow {
            config: "C1.5".into(),
            member_makespans: vec![750.0, 755.0],
            ensemble_makespan: 755.0,
        }];
        let s = render_fig45(&rows);
        assert!(s.contains("C1.5"));
        assert!(s.contains("755.0"));
    }

    #[test]
    fn indicator_pivot_has_all_columns() {
        let rows = vec![
            IndicatorRow { config: "C1.4".into(), path: "U".into(), objective: 0.01 },
            IndicatorRow { config: "C1.4".into(), path: "U,A,P".into(), objective: 0.002 },
            IndicatorRow { config: "C1.5".into(), path: "U".into(), objective: 0.011 },
            IndicatorRow { config: "C1.5".into(), path: "U,A,P".into(), objective: 0.009 },
        ];
        let s = render_indicators(&rows);
        assert!(s.contains("F(P^{U})"));
        assert!(s.contains("F(P^{U,A,P})"));
        assert!(s.contains("C1.5"));
    }
}
