//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p bench --bin repro -- [table2|table4|fig3|fig4|fig5|fig7|fig8|fig9|all] [--json DIR]
//! ```
//!
//! Each experiment prints the rows/series of the corresponding paper
//! artifact; `--json DIR` additionally writes machine-readable results.

use std::path::PathBuf;

use bench::experiments;
use bench::render;
use ensemble_core::ConfigId;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut json_dir: Option<PathBuf> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--json" {
            json_dir = it.next().map(PathBuf::from);
            if json_dir.is_none() {
                eprintln!("--json requires a directory argument");
                std::process::exit(2);
            }
        } else {
            which.push(a);
        }
    }
    if which.is_empty() {
        which.push("all".to_string());
    }
    if let Some(dir) = &json_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }

    let run_all = which.iter().any(|w| w == "all");
    let wants = |name: &str| run_all || which.iter().any(|w| w == name);
    let mut ran_any = false;

    if wants("table2") {
        ran_any = true;
        println!("== Table 2: experimental scenario configuration settings ==");
        println!("{}", render::render_config_table(&ConfigId::set_one()));
    }
    if wants("table4") {
        ran_any = true;
        println!("== Table 4: configurations with two analyses per simulation ==");
        println!("{}", render::render_config_table(&ConfigId::set_two()));
    }
    if wants("fig3") {
        ran_any = true;
        println!("== Figure 3: ensemble-component-level metrics (set one) ==");
        match experiments::fig3_component_metrics() {
            Ok(rows) => {
                println!("{}", render::render_fig3(&rows));
                write_json(&json_dir, "fig3.json", &rows);
            }
            Err(e) => fail("fig3", &e),
        }
    }
    if wants("fig4") || wants("fig5") {
        ran_any = true;
        println!("== Figures 4 & 5: member and ensemble makespans (set one) ==");
        match experiments::fig45_makespans() {
            Ok(rows) => {
                println!("{}", render::render_fig45(&rows));
                write_json(&json_dir, "fig45.json", &rows);
            }
            Err(e) => fail("fig4/fig5", &e),
        }
    }
    if wants("fig7") {
        ran_any = true;
        println!("== Figure 7: in situ step and efficiency vs analysis cores ==");
        match experiments::fig7_core_sweep() {
            Ok(sweep) => {
                println!("{}", render::render_fig7(&sweep));
                write_json(&json_dir, "fig7.json", &sweep);
            }
            Err(e) => fail("fig7", &e),
        }
    }
    if wants("fig8") {
        ran_any = true;
        println!("== Figure 8: F(P) per indicator stage (set one, higher is better) ==");
        match experiments::fig8_indicators() {
            Ok(rows) => {
                println!("{}", render::render_indicators(&rows));
                summarize_best("Figure 8", &rows);
                write_json(&json_dir, "fig8.json", &rows);
            }
            Err(e) => fail("fig8", &e),
        }
    }
    if wants("fig9") {
        ran_any = true;
        println!("== Figure 9: F(P) per indicator stage (set two, higher is better) ==");
        match experiments::fig9_indicators() {
            Ok(rows) => {
                println!("{}", render::render_indicators(&rows));
                summarize_best("Figure 9", &rows);
                write_json(&json_dir, "fig9.json", &rows);
            }
            Err(e) => fail("fig9", &e),
        }
    }

    if wants("ext-lost-frames") {
        ran_any = true;
        println!("== Extension: lost frames vs queue depth (in-transit coupling) ==");
        match experiments::ext_lost_frames() {
            Ok(rows) => {
                println!(
                    "{:>6} {:>9} {:>9} {:>6} {:>14} {:>14}",
                    "aload", "queue", "produced", "lost", "sim_idle(s)", "sim_finish(s)"
                );
                for r in &rows {
                    println!(
                        "{:>6.1} {:>9} {:>9} {:>6} {:>14.2} {:>14.1}",
                        r.analysis_scale,
                        if r.queue_capacity == 0 {
                            "sync".to_string()
                        } else {
                            r.queue_capacity.to_string()
                        },
                        r.produced,
                        r.lost,
                        r.sim_idle_seconds,
                        r.sim_finish_seconds
                    );
                }
                println!();
                write_json(&json_dir, "ext_lost_frames.json", &rows);
            }
            Err(e) => fail("ext-lost-frames", &e),
        }
    }

    if !ran_any {
        eprintln!(
            "unknown experiment '{}'; use table2|table4|fig3|fig4|fig5|fig7|fig8|fig9|ext-lost-frames|all",
            which.join(" ")
        );
        std::process::exit(2);
    }
}

fn summarize_best(figure: &str, rows: &[bench::experiments::IndicatorRow]) {
    let final_path = "U,A,P";
    if let Some(best) = rows
        .iter()
        .filter(|r| r.path == final_path)
        .max_by(|a, b| a.objective.total_cmp(&b.objective))
    {
        let worst = rows
            .iter()
            .filter(|r| r.path == final_path)
            .min_by(|a, b| a.objective.total_cmp(&b.objective))
            .expect("non-empty");
        println!(
            "{figure}: best configuration at F(P^{{U,A,P}}) is {} ({:.3e}); spread best/worst = {:.1}x\n",
            best.config,
            best.objective,
            best.objective / worst.objective.max(f64::MIN_POSITIVE)
        );
    }
}

fn write_json<T: serde::Serialize>(dir: &Option<PathBuf>, name: &str, value: &T) {
    if let Some(dir) = dir {
        let path = dir.join(name);
        match serde_json::to_string_pretty(value) {
            Ok(body) => {
                if let Err(e) = std::fs::write(&path, body) {
                    eprintln!("warning: cannot write {}: {e}", path.display());
                }
            }
            Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
        }
    }
}

fn fail(what: &str, err: &dyn std::fmt::Display) {
    eprintln!("{what} failed: {err}");
    std::process::exit(1);
}
