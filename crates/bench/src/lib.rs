//! # bench — experiment harness regenerating every table and figure
//!
//! * [`experiments`] — one function per paper artifact (Figure 3,
//!   Figures 4/5, Figure 7, Figures 8/9, Tables 2/4), each running the
//!   named configurations on the simulated platform at paper scale
//!   (37 in situ steps, 5 trials);
//! * [`render`] — plain-text tables matching the paper's rows/series.
//!
//! The `repro` binary drives both:
//! `cargo run -p bench --bin repro -- all`.

#![warn(missing_docs)]

pub mod experiments;
pub mod render;
