//! Microbenchmarks of the substrates: discrete-event engine throughput,
//! the interference fixed-point solver, and the closed-form predictor —
//! the hot paths behind every experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ensemble_core::ConfigId;
use hpc_platform::{BindPolicy, InterferenceModel, PlacedWorkload, Platform};
use sim_des::{Engine, Poll, Process, SimDuration};
use std::hint::black_box;

/// A process that sleeps a fixed interval `n` times.
struct Ticker {
    remaining: u64,
}

impl Process<u64> for Ticker {
    fn poll(&mut self, state: &mut u64, _ctx: &mut sim_des::Context) -> Poll {
        *state += 1;
        if self.remaining == 0 {
            return Poll::Done;
        }
        self.remaining -= 1;
        Poll::Sleep(SimDuration::from_micros(10))
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_engine");
    for events in [10_000u64, 100_000] {
        group.throughput(Throughput::Elements(events));
        group.bench_with_input(BenchmarkId::from_parameter(events), &events, |b, &n| {
            b.iter(|| {
                let mut engine = Engine::new(0u64);
                // 10 interleaved processes sharing the clock.
                for _ in 0..10 {
                    engine.spawn(Box::new(Ticker { remaining: n / 10 }));
                }
                engine.run();
                black_box(engine.events_fired())
            })
        });
    }
    group.finish();
}

fn bench_interference_solver(c: &mut Criterion) {
    let spec = hpc_platform::cori::cori_node();
    let model = InterferenceModel::default();
    let mut group = c.benchmark_group("interference_solver");
    for tenants in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(tenants), &tenants, |b, &tenants| {
            let mut platform = Platform::new(1, spec.clone(), hpc_platform::cori::aries_network());
            let placed: Vec<PlacedWorkload> = (0..tenants)
                .map(|i| PlacedWorkload {
                    alloc: platform.allocate(0, 32 / tenants as u32, BindPolicy::Spread).unwrap(),
                    workload: if i % 2 == 0 {
                        kernels::profile::simulation_workload(800)
                    } else {
                        kernels::profile::analysis_workload()
                    },
                })
                .collect();
            b.iter(|| black_box(model.solve_node(&spec, black_box(&placed), &[]).len()))
        });
    }
    group.finish();
}

fn bench_predictor(c: &mut Criterion) {
    let cfg = runtime::SimRunConfig {
        n_steps: 37,
        jitter: 0.0,
        ..runtime::SimRunConfig::paper(ConfigId::C2_8.build())
    };
    c.bench_function("predictor/c2_8_paper_scale", |b| {
        b.iter(|| black_box(runtime::predict(black_box(&cfg)).unwrap().ensemble_makespan))
    });
}

criterion_group!(benches, bench_engine, bench_interference_solver, bench_predictor);
criterion_main!(benches);
