//! Figure 7 bench: regenerates the analysis-core sweep and measures one
//! sweep evaluation.

use bench::{experiments, render};
use criterion::{criterion_group, criterion_main, Criterion};
use scheduler::{core_sweep, CoreSweepConfig};
use std::hint::black_box;

fn bench_fig7(c: &mut Criterion) {
    let sweep = experiments::fig7_core_sweep().expect("fig7 regeneration");
    println!("\n{}", render::render_fig7(&sweep));
    assert_eq!(sweep.recommended_cores, 8, "the paper's heuristic selects 8 cores");

    c.bench_function("fig7/full_sweep", |b| {
        b.iter(|| {
            let mut cfg = CoreSweepConfig::paper();
            cfg.steps = 6;
            black_box(core_sweep(black_box(&cfg)).expect("sweep").recommended_cores)
        })
    });
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
