//! Throughput of the parallel placement-scan engine: serial versus
//! parallel at 1/2/4/all cores, on both evaluation paths (the
//! closed-form fast evaluator and the DES-scored exhaustive search).
//!
//! Plain `main` + `std::time::Instant` instead of criterion: the
//! quantity of interest is whole-scan wall time at controlled worker
//! counts, and the output must be machine-readable. Results land in
//! `BENCH_scan.json` at the workspace root (override with
//! `ENSEMBLE_BENCH_OUT`); `ENSEMBLE_SCAN_BENCH_QUICK=1` shrinks reps
//! and the candidate space for CI smoke runs.
//!
//! Every timed configuration is first checked bit-identical to the
//! serial scan — a benchmark of a wrong answer is worthless.

use std::time::Instant;

use runtime::{RuntimeResult, SimRunConfig, WorkloadMap};
use scheduler::{
    exhaustive_search_with, scan_placements, scan_placements_delta, DeltaCounters, DeltaEvaluator,
    EnsembleShape, FastEvaluator, NodeBudget, ScanOptions, SearchConfig,
};
use svc::{
    CoschedSvcConfig, Request, RequestBody, Response, Service, SubmitRequest, SvcConfig, Workloads,
};

struct Sample {
    workers: usize,
    candidates: usize,
    secs: f64,
    speedup: f64,
}

fn worker_counts(host_cores: usize) -> Vec<usize> {
    let mut counts = vec![1usize, 2, 4];
    if !counts.contains(&host_cores) {
        counts.push(host_cores);
    }
    counts
}

fn median_secs(reps: usize, mut run: impl FnMut() -> usize) -> (f64, usize) {
    let mut times = Vec::with_capacity(reps);
    let mut candidates = 0;
    for _ in 0..reps {
        let start = Instant::now();
        candidates = run();
        times.push(start.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], candidates)
}

fn fast_scan(
    base: &SimRunConfig,
    shape: &EnsembleShape,
    budget: NodeBudget,
    workers: usize,
) -> Vec<u64> {
    let opts = ScanOptions { workers, ..Default::default() };
    scan_placements(
        shape,
        budget,
        &opts,
        || FastEvaluator::new(base),
        |evaluator: &mut FastEvaluator, _, assignment: &[usize]| -> RuntimeResult<Option<f64>> {
            let spec = shape.materialize(assignment);
            Ok(Some(evaluator.score(&spec)?.objective))
        },
        |objective| *objective,
        || false,
    )
    .expect("fast scan")
    .into_values()
    .into_iter()
    .map(f64::to_bits)
    .collect()
}

/// The fast-path sweep scenario shared by the from-scratch and delta
/// benchmarks: a space large enough that per-candidate work dominates
/// chunk handoff — 8 components over up to 6 nodes.
fn fast_scenario(quick: bool) -> (EnsembleShape, NodeBudget, SimRunConfig) {
    let (members, max_nodes) = if quick { (3, 3) } else { (4, 6) };
    let shape = EnsembleShape::uniform(members, 8, 1, 4);
    let budget = NodeBudget { max_nodes, cores_per_node: 32 };
    let base = {
        let mut cfg = SimRunConfig::paper(shape.materialize(&vec![0; shape.num_components()]));
        cfg.workloads = WorkloadMap::small_defaults();
        cfg
    };
    (shape, budget, base)
}

fn bench_fast_path(quick: bool, host_cores: usize) -> Vec<Sample> {
    let (shape, budget, base) = fast_scenario(quick);
    let reference = fast_scan(&base, &shape, budget, 1);
    let reps = if quick { 3 } else { 7 };
    let mut samples = Vec::new();
    let mut serial_secs = 0.0;
    for workers in worker_counts(host_cores) {
        assert_eq!(fast_scan(&base, &shape, budget, workers), reference, "bit-identity broken");
        let (secs, candidates) =
            median_secs(reps, || fast_scan(&base, &shape, budget, workers).len());
        if workers == 1 {
            serial_secs = secs;
        }
        samples.push(Sample { workers, candidates, secs, speedup: serial_secs / secs });
    }
    samples
}

fn delta_scan(
    base: &SimRunConfig,
    shape: &EnsembleShape,
    budget: NodeBudget,
    workers: usize,
) -> (Vec<u64>, DeltaCounters) {
    let opts = ScanOptions { workers, ..Default::default() };
    let outcome = scan_placements_delta(
        shape,
        budget,
        &opts,
        || DeltaEvaluator::new(base, shape),
        |evaluator: &mut DeltaEvaluator,
         _,
         assignment: &[usize],
         hint|
         -> RuntimeResult<Option<f64>> {
            Ok(Some(evaluator.score_delta(assignment, hint)?.objective))
        },
        DeltaEvaluator::take_counters,
        |objective| *objective,
        || false,
    )
    .expect("delta scan");
    let counters = outcome.delta;
    (outcome.into_values().into_iter().map(f64::to_bits).collect(), counters)
}

struct DeltaSample {
    workers: usize,
    candidates: usize,
    secs: f64,
    speedup_vs_fast_serial: f64,
    solve_hits: u64,
    solve_misses: u64,
    hit_rate: f64,
    members_recomputed: u64,
}

/// The same fast-path sweep scored by the incremental [`DeltaEvaluator`]:
/// first proved bit-identical to the from-scratch serial scan at every
/// worker count, then timed. `speedup_vs_fast_serial` is the headline —
/// delta at `workers: 1` against the from-scratch evaluator at
/// `workers: 1`.
fn bench_delta_path(quick: bool, host_cores: usize, fast_serial_secs: f64) -> Vec<DeltaSample> {
    let (shape, budget, base) = fast_scenario(quick);
    let reference = fast_scan(&base, &shape, budget, 1);
    let reps = if quick { 3 } else { 7 };
    let mut samples = Vec::new();
    for workers in worker_counts(host_cores) {
        let (bits, counters) = delta_scan(&base, &shape, budget, workers);
        assert_eq!(bits, reference, "delta scan not bit-identical to the from-scratch path");
        assert!(
            counters.solve_hits > 0,
            "a canonical sweep must reuse node-occupancy solves, got {counters:?}"
        );
        let (secs, candidates) =
            median_secs(reps, || delta_scan(&base, &shape, budget, workers).0.len());
        samples.push(DeltaSample {
            workers,
            candidates,
            secs,
            speedup_vs_fast_serial: fast_serial_secs / secs,
            solve_hits: counters.solve_hits,
            solve_misses: counters.solve_misses,
            hit_rate: counters.solve_hit_rate(),
            members_recomputed: counters.members_recomputed,
        });
    }
    samples
}

fn render_delta(samples: &[DeltaSample]) -> String {
    let rows: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "    {{\"workers\": {}, \"candidates\": {}, \"secs\": {:.6}, \"speedup_vs_fast_serial\": {:.3}, \"solve_hits\": {}, \"solve_misses\": {}, \"solve_hit_rate\": {:.4}, \"members_recomputed\": {}}}",
                s.workers,
                s.candidates,
                s.secs,
                s.speedup_vs_fast_serial,
                s.solve_hits,
                s.solve_misses,
                s.hit_rate,
                s.members_recomputed
            )
        })
        .collect();
    format!("[\n{}\n  ]", rows.join(",\n"))
}

fn bench_des_path(quick: bool, host_cores: usize) -> Vec<Sample> {
    let config = SearchConfig::new(
        EnsembleShape::uniform(2, 16, 1, 8),
        NodeBudget { max_nodes: 3, cores_per_node: 32 },
    )
    .small_scale();
    let reps = if quick { 1 } else { 3 };
    let run = |workers: usize| -> Vec<u64> {
        exhaustive_search_with(&config, &ScanOptions { workers, ..Default::default() })
            .expect("des scan")
            .into_values()
            .into_iter()
            .map(|p| p.objective.to_bits())
            .collect()
    };
    let reference = run(1);
    let mut samples = Vec::new();
    let mut serial_secs = 0.0;
    for workers in worker_counts(host_cores) {
        assert_eq!(run(workers), reference, "bit-identity broken");
        let (secs, candidates) = median_secs(reps, || run(workers).len());
        if workers == 1 {
            serial_secs = secs;
        }
        samples.push(Sample { workers, candidates, secs, speedup: serial_secs / secs });
    }
    samples
}

struct CoschedSample {
    concurrent: usize,
    jobs: usize,
    wait_p50_ms: f64,
    wait_p95_ms: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Queue wait observed by co-scheduled submits at increasing
/// concurrency: one ensemble at a time never waits; a burst wider than
/// the 2×32-core platform queues, and the p50/p95 of `queue_wait_ms`
/// across every admitted job is the cost of sharing.
fn bench_cosched(quick: bool) -> Vec<CoschedSample> {
    let submit = |id: u64, steps: u64| Request {
        id,
        deadline: None,
        progress: None,
        tenant: None,
        body: RequestBody::Submit(SubmitRequest {
            // 24 cores per ensemble: two fit the platform, the rest of
            // a burst waits for a release.
            shape: EnsembleShape::uniform(1, 16, 1, 8),
            steps,
            jitter: 0.0,
            seed: 1,
            workloads: Workloads::Small,
        }),
    };
    let steps = if quick { 500 } else { 5_000 };
    let rounds = if quick { 2 } else { 5 };
    let widths: &[usize] = if quick { &[1, 4] } else { &[1, 4, 8] };
    let mut samples = Vec::new();
    for &concurrent in widths {
        let service = Service::start(SvcConfig {
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 16,
            default_deadline: None,
            journal: None,
            panic_on_request_id: None,
            scan_workers: 0,
            cosched: Some(CoschedSvcConfig::new(NodeBudget { max_nodes: 2, cores_per_node: 32 })),
            tenant_policy: svc::TenantPolicy::default(),
        });
        let mut waits = Vec::new();
        let mut id = 0u64;
        for _ in 0..rounds {
            let pending: Vec<_> = (0..concurrent)
                .map(|_| {
                    id += 1;
                    service.submit(submit(id, steps)).expect("admitted")
                })
                .collect();
            for p in pending {
                match p.wait() {
                    Response::SubmitResult { queue_wait_ms, .. } => waits.push(queue_wait_ms),
                    other => panic!("expected submit result, got {other:?}"),
                }
            }
        }
        service.shutdown();
        waits.sort_by(f64::total_cmp);
        samples.push(CoschedSample {
            concurrent,
            jobs: waits.len(),
            wait_p50_ms: percentile(&waits, 0.50),
            wait_p95_ms: percentile(&waits, 0.95),
        });
    }
    samples
}

fn render_cosched(samples: &[CoschedSample]) -> String {
    let rows: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "    {{\"concurrent\": {}, \"jobs\": {}, \"queue_wait_p50_ms\": {:.3}, \"queue_wait_p95_ms\": {:.3}}}",
                s.concurrent, s.jobs, s.wait_p50_ms, s.wait_p95_ms
            )
        })
        .collect();
    format!("[\n{}\n  ]", rows.join(",\n"))
}

fn render(samples: &[Sample]) -> String {
    let rows: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "    {{\"workers\": {}, \"candidates\": {}, \"secs\": {:.6}, \"speedup_vs_serial\": {:.3}}}",
                s.workers, s.candidates, s.secs, s.speedup
            )
        })
        .collect();
    format!("[\n{}\n  ]", rows.join(",\n"))
}

fn main() {
    let quick = std::env::var("ENSEMBLE_SCAN_BENCH_QUICK").is_ok_and(|v| v == "1");
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    eprintln!("scan_throughput: host_cores={host_cores} quick={quick}");

    let fast = bench_fast_path(quick, host_cores);
    for s in &fast {
        eprintln!(
            "  fast  workers={:<2} candidates={:<6} {:.4}s  {:.2}x",
            s.workers, s.candidates, s.secs, s.speedup
        );
    }
    let fast_serial_secs =
        fast.iter().find(|s| s.workers == 1).map(|s| s.secs).expect("serial fast sample");
    let delta = bench_delta_path(quick, host_cores, fast_serial_secs);
    for s in &delta {
        eprintln!(
            "  delta workers={:<2} candidates={:<6} {:.4}s  {:.2}x vs fast serial  hit_rate={:.3}",
            s.workers, s.candidates, s.secs, s.speedup_vs_fast_serial, s.hit_rate
        );
    }
    let des = bench_des_path(quick, host_cores);
    for s in &des {
        eprintln!(
            "  des   workers={:<2} candidates={:<6} {:.4}s  {:.2}x",
            s.workers, s.candidates, s.secs, s.speedup
        );
    }

    let cosched = bench_cosched(quick);
    for s in &cosched {
        eprintln!(
            "  cosched concurrent={:<2} jobs={:<3} wait p50={:.3}ms p95={:.3}ms",
            s.concurrent, s.jobs, s.wait_p50_ms, s.wait_p95_ms
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"scan_throughput\",\n  \"host_cores\": {host_cores},\n  \"quick\": {quick},\n  \"fast_path\": {},\n  \"delta_eval\": {},\n  \"des_path\": {},\n  \"cosched_queue_wait\": {}\n}}\n",
        render(&fast),
        render_delta(&delta),
        render(&des),
        render_cosched(&cosched),
    );
    let out = std::env::var("ENSEMBLE_BENCH_OUT").unwrap_or_else(|_| {
        // cargo bench runs with the package as cwd; anchor the default
        // at the workspace root instead.
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scan.json").into()
    });
    std::fs::write(&out, &json).expect("write bench output");
    eprintln!("wrote {out}");
}
