//! DTL staging-tier benchmarks: in-memory (DIMES-like) put/get cycles
//! versus the parallel-file-system tier, across chunk sizes — the cost
//! asymmetry that motivates in situ processing.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dtl::protocol::ReaderId;
use dtl::{Chunk, VariableSpec};
use std::hint::black_box;
use std::sync::Arc;

fn spec(name: &str) -> VariableSpec {
    VariableSpec { name: name.into(), expected_readers: 1, home_node: 0 }
}

fn bench_memory_staging(c: &mut Criterion) {
    let mut group = c.benchmark_group("staging_memory");
    for size in [4 * 1024usize, 256 * 1024, 2 * 1024 * 1024] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let staging = Arc::new(dtl::staging::dimes());
            let var = staging.register(spec("bench")).unwrap();
            let payload = Bytes::from(vec![0xA5u8; size]);
            let mut step = 0u64;
            b.iter(|| {
                let chunk = Chunk::new(var, step, 0, "raw", payload.clone());
                staging.put(chunk).unwrap();
                let got = staging.get(var, step, ReaderId(0)).unwrap();
                step += 1;
                black_box(got.len())
            })
        });
    }
    group.finish();
}

fn bench_pfs_staging(c: &mut Criterion) {
    let mut group = c.benchmark_group("staging_pfs");
    group.sample_size(20);
    for size in [4 * 1024usize, 256 * 1024] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let dir = std::env::temp_dir().join(format!("bench-pfs-{}", std::process::id()));
            let staging = Arc::new(dtl::staging::pfs(&dir).unwrap());
            let var = staging.register(spec("bench")).unwrap();
            let payload = Bytes::from(vec![0x5Au8; size]);
            let mut step = 0u64;
            b.iter(|| {
                let chunk = Chunk::new(var, step, 0, "raw", payload.clone());
                staging.put(chunk).unwrap();
                let got = staging.get(var, step, ReaderId(0)).unwrap();
                step += 1;
                black_box(got.len())
            });
            let _ = std::fs::remove_dir_all(&dir);
        });
    }
    group.finish();
}

fn bench_cross_thread_pipeline(c: &mut Criterion) {
    c.bench_function("staging_memory/cross_thread_64x256KiB", |b| {
        b.iter(|| {
            let staging = Arc::new(dtl::staging::dimes());
            let var = staging.register(spec("pipe")).unwrap();
            let producer = {
                let staging = Arc::clone(&staging);
                std::thread::spawn(move || {
                    let payload = Bytes::from(vec![1u8; 256 * 1024]);
                    for step in 0..64u64 {
                        staging.put(Chunk::new(var, step, 0, "raw", payload.clone())).unwrap();
                    }
                })
            };
            let mut total = 0usize;
            for step in 0..64u64 {
                total += staging.get(var, step, ReaderId(0)).unwrap().len();
            }
            producer.join().unwrap();
            black_box(total)
        })
    });
}

/// Members × variables scaling sweep: N concurrent member pipelines,
/// each a producer/consumer thread pair coupled through its own
/// variable. With the sharded (per-variable-lock) staging area the
/// aggregate throughput scales with the member count; a global staging
/// lock flatlines it. 1 → 32 members covers the paper's ensemble sizes.
fn bench_member_scaling(c: &mut Criterion) {
    const STEPS: u64 = 32;
    const CHUNK: usize = 64 * 1024;
    let mut group = c.benchmark_group("staging_member_scaling");
    group.sample_size(10);
    for members in [1usize, 2, 4, 8, 16, 32] {
        group.throughput(Throughput::Bytes((members as u64) * STEPS * CHUNK as u64));
        group.bench_with_input(BenchmarkId::from_parameter(members), &members, |b, &members| {
            b.iter(|| {
                let staging = Arc::new(dtl::staging::dimes());
                let vars: Vec<_> = (0..members)
                    .map(|m| staging.register(spec(&format!("member{m}"))).unwrap())
                    .collect();
                let payload = Bytes::from(vec![0x42u8; CHUNK]);
                let total: usize = std::thread::scope(|scope| {
                    for &var in &vars {
                        let staging = Arc::clone(&staging);
                        let payload = payload.clone();
                        scope.spawn(move || {
                            for step in 0..STEPS {
                                staging
                                    .put(Chunk::new(var, step, 0, "raw", payload.clone()))
                                    .unwrap();
                            }
                        });
                    }
                    let consumers: Vec<_> = vars
                        .iter()
                        .map(|&var| {
                            let staging = Arc::clone(&staging);
                            scope.spawn(move || {
                                let mut total = 0usize;
                                for step in 0..STEPS {
                                    total += staging.get(var, step, ReaderId(0)).unwrap().len();
                                }
                                total
                            })
                        })
                        .collect();
                    consumers.into_iter().map(|h| h.join().unwrap()).sum()
                });
                black_box(total)
            })
        });
    }
    group.finish();
}

fn bench_async_staging(c: &mut Criterion) {
    use dtl::staging::AsyncStaging;
    c.bench_function("staging_async/put_next_256KiB", |b| {
        let staging = AsyncStaging::new(4);
        let var = staging.register(spec("async")).unwrap();
        let payload = Bytes::from(vec![3u8; 256 * 1024]);
        let mut step = 0u64;
        b.iter(|| {
            staging.put(Chunk::new(var, step, 0, "raw", payload.clone())).unwrap();
            let got = staging
                .next(var, ReaderId(0), std::time::Duration::from_secs(5))
                .unwrap()
                .expect("frame present");
            step += 1;
            black_box(got.len())
        })
    });
}

criterion_group!(
    benches,
    bench_memory_staging,
    bench_pfs_staging,
    bench_cross_thread_pipeline,
    bench_member_scaling,
    bench_async_staging
);
criterion_main!(benches);
