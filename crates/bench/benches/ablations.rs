//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. interference model on/off — without it, co-location ranking
//!    collapses;
//! 2. node-local (DIMES) vs forced-remote staging — locality value;
//! 3. unbuffered vs double-buffered protocol — σ̄* shift;
//! 4. mean−std (Eq. 9) vs plain-mean objective — variance penalty.

use bench::experiments;
use criterion::{criterion_group, criterion_main, Criterion};
use ensemble_core::{aggregate, Aggregation, ConfigId, IndicatorPath, MemberInputs};
use runtime::EnsembleRunner;
use std::hint::black_box;

fn objective_with(runner: EnsembleRunner, id: ConfigId, agg: Aggregation) -> f64 {
    let spec = id.build();
    let report = runner.run().expect("run");
    let values: Vec<f64> = report
        .members
        .iter()
        .zip(&spec.members)
        .map(|(mr, ms)| {
            let inputs = MemberInputs::from_specs(ms, &spec, mr.efficiency);
            ensemble_core::indicator(&inputs, &IndicatorPath::uap())
        })
        .collect();
    aggregate(&values, agg)
}

fn runner(id: ConfigId) -> EnsembleRunner {
    EnsembleRunner::paper_config(id).steps(experiments::STEPS).jitter(0.0)
}

fn bench_ablations(c: &mut Criterion) {
    // --- 1. Interference ablation. ---
    let with_interf: Vec<f64> = [ConfigId::C1_1, ConfigId::C1_4, ConfigId::C1_5]
        .iter()
        .map(|&id| runner(id).run().unwrap().ensemble_makespan)
        .collect();
    let without_interf: Vec<f64> = [ConfigId::C1_1, ConfigId::C1_4, ConfigId::C1_5]
        .iter()
        .map(|&id| runner(id).without_interference().run().unwrap().ensemble_makespan)
        .collect();
    println!("\nablation 1 — interference model:");
    println!(
        "  with   : C1.1 {:.1}s, C1.4 {:.1}s, C1.5 {:.1}s",
        with_interf[0], with_interf[1], with_interf[2]
    );
    println!(
        "  without: C1.1 {:.1}s, C1.4 {:.1}s, C1.5 {:.1}s",
        without_interf[0], without_interf[1], without_interf[2]
    );
    let spread_with = with_interf.iter().cloned().fold(f64::MIN, f64::max)
        - with_interf.iter().cloned().fold(f64::MAX, f64::min);
    let spread_without = without_interf.iter().cloned().fold(f64::MIN, f64::max)
        - without_interf.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        spread_with > spread_without,
        "disabling interference must collapse the co-location spread"
    );

    // --- 2. Locality ablation. ---
    let local = runner(ConfigId::C1_5).run().unwrap().ensemble_makespan;
    let remote = runner(ConfigId::C1_5).force_remote_reads().run().unwrap().ensemble_makespan;
    println!("ablation 2 — staging locality: local reads {local:.2}s, forced remote {remote:.2}s");
    assert!(remote >= local, "remote staging cannot be faster than local");

    // --- 3. Buffering ablation. ---
    let unbuffered = runner(ConfigId::C1_1).run().unwrap();
    let buffered = runner(ConfigId::C1_1).staging_capacity(2).run().unwrap();
    println!(
        "ablation 3 — protocol buffering: capacity 1 sigma* {:.2}s, capacity 2 sigma* {:.2}s",
        unbuffered.members[0].sigma_star, buffered.members[0].sigma_star
    );

    // --- 4. Objective ablation. ---
    let eq9 = objective_with(runner(ConfigId::C1_3), ConfigId::C1_3, Aggregation::MeanMinusStd);
    let mean = objective_with(runner(ConfigId::C1_3), ConfigId::C1_3, Aggregation::Mean);
    println!(
        "ablation 4 — objective: Eq.9 {eq9:.3e} vs plain mean {mean:.3e} on C1.3 (uneven members)"
    );
    assert!(eq9 < mean, "Eq. 9 must penalize C1.3's member imbalance");

    c.bench_function("ablation/interference_toggle", |b| {
        b.iter(|| {
            black_box(
                runner(black_box(ConfigId::C1_5))
                    .without_interference()
                    .run()
                    .unwrap()
                    .ensemble_makespan,
            )
        })
    });
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
