//! Provisioning-service throughput: cold scoring vs cache-warm answers.
//!
//! The acceptance story for the score cache: an identical repeated query
//! must be answered **without touching the predictor** — so the warm
//! path should be orders of magnitude faster than the cold path, which
//! enumerates and closed-form-scores every canonical placement.
//!
//! Three measurements:
//! 1. `score_cold` — cache cleared before every request (full
//!    enumerate + `FastEvaluator` scan);
//! 2. `score_warm` — same request repeated against a warm cache;
//! 3. `tcp_roundtrip_warm` — the warm path including the JSON-lines
//!    socket hop, i.e. what a remote client actually observes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use svc::{serve, small_score_request, Response, Service, SvcClient, SvcConfig};

fn config() -> SvcConfig {
    SvcConfig {
        workers: 2,
        queue_capacity: 32,
        cache_capacity: 64,
        default_deadline: None,
        journal: None,
        panic_on_request_id: None,
        scan_workers: 0,
        cosched: None,
        tenant_policy: svc::TenantPolicy::default(),
    }
}

/// The benched query: 3 members × (16+8) cores on up to 4×32-core
/// nodes — dozens of canonical placements per evaluation.
fn query(id: u64) -> svc::Request {
    small_score_request(id, 3, 16, 1, 8, 4)
}

fn expect_score(response: Response, want_cached: bool) -> Response {
    match &response {
        Response::ScoreResult { cached, placements, .. } => {
            assert_eq!(*cached, want_cached, "cache state must match the scenario");
            assert!(!placements.is_empty());
        }
        other => panic!("expected score result, got {other:?}"),
    }
    response
}

fn bench_svc_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("svc_throughput");

    let service = Service::start(config());
    group.bench_function("score_cold", |b| {
        b.iter(|| {
            // Clearing the cache forces the full enumerate+score path.
            service.clear_cache();
            let response = service.submit(black_box(query(1))).expect("admitted").wait();
            black_box(expect_score(response, false))
        })
    });

    // Prime once, then measure pure hits.
    service.clear_cache();
    let _ = service.submit(query(2)).expect("admitted").wait();
    group.bench_function("score_warm", |b| {
        b.iter(|| {
            let response = service.submit(black_box(query(3))).expect("admitted").wait();
            black_box(expect_score(response, true))
        })
    });
    let m = service.metrics();
    println!(
        "\nsvc cache after in-process phases: {} hits / {} misses (hit rate {:.3})",
        m.cache_hits,
        m.cache_misses,
        m.cache_hit_rate()
    );
    service.shutdown();

    let handle = serve("127.0.0.1:0", config()).expect("bind");
    let mut client = SvcClient::connect(handle.addr()).expect("connect");
    let _ = client.request(&query(4)).expect("prime");
    group.bench_function("tcp_roundtrip_warm", |b| {
        b.iter(|| {
            let response = client.request(black_box(&query(5))).expect("response");
            black_box(expect_score(response, true))
        })
    });
    drop(client);
    handle.shutdown();

    group.finish();
}

criterion_group!(benches, bench_svc_throughput);
criterion_main!(benches);
