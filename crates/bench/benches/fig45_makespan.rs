//! Figures 4/5 bench: regenerates member and ensemble makespans for set
//! one and measures the makespan pipeline.

use bench::{experiments, render};
use criterion::{criterion_group, criterion_main, Criterion};
use ensemble_core::ConfigId;
use runtime::EnsembleRunner;
use std::hint::black_box;

fn bench_fig45(c: &mut Criterion) {
    let rows = experiments::fig45_makespans().expect("fig4/5 regeneration");
    println!("\n{}", render::render_fig45(&rows));

    // Shape assertion: C1.5 has the best ensemble makespan among the
    // two-member configurations (the paper's headline). C1.3's first
    // member is co-located exactly like C1.5's, so those two are
    // statistically tied under trial jitter (max-of-two members vs one);
    // a 0.5 % tolerance absorbs that while still catching real
    // regressions against the contended configs.
    let of =
        |label: &str| rows.iter().find(|r| r.config == label).map(|r| r.ensemble_makespan).unwrap();
    for other in ["C1.1", "C1.2", "C1.3", "C1.4"] {
        assert!(
            of("C1.5") <= of(other) * 1.005,
            "C1.5 must not lose to {other} on ensemble makespan"
        );
    }

    c.bench_function("fig45/member_makespan_pipeline", |b| {
        let exec = EnsembleRunner::paper_config(ConfigId::C1_4)
            .steps(experiments::STEPS)
            .jitter(0.0)
            .execute()
            .expect("execution");
        b.iter(|| black_box(metrics::ensemble_makespan(black_box(&exec.trace), &[1, 1])))
    });
}

criterion_group!(benches, bench_fig45);
criterion_main!(benches);
