//! Microbenchmarks of the real kernels: the MD engine's stride
//! advancement and the bipartite-eigenvalue analysis — the two
//! components every ensemble member actually runs in threaded mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kernels::analysis::EigenAnalysis;
use kernels::md::{MdConfig, MdSimulation};
use std::hint::black_box;

fn bench_md(c: &mut Criterion) {
    let mut group = c.benchmark_group("md_stride");
    for atoms_per_side in [4usize, 6, 8] {
        let n = atoms_per_side.pow(3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &atoms_per_side, |b, &aps| {
            let cfg = MdConfig { atoms_per_side: aps, stride: 10, ..Default::default() };
            let mut sim = MdSimulation::new(&cfg);
            b.iter(|| black_box(sim.advance_stride().step))
        });
    }
    group.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("eigen_analysis");
    let cfg = MdConfig { atoms_per_side: 8, stride: 5, ..Default::default() };
    let mut sim = MdSimulation::new(&cfg);
    let frame = sim.advance_stride();
    for group_size in [32usize, 64, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(group_size), &group_size, |b, &k| {
            let kernel = EigenAnalysis::interleaved(frame.num_atoms(), k, 1.2);
            b.iter(|| black_box(kernel.analyze(black_box(&frame)).collective_variable))
        });
    }
    group.finish();
}

fn bench_frame_codec(c: &mut Criterion) {
    let cfg = MdConfig { atoms_per_side: 8, stride: 5, ..Default::default() };
    let mut sim = MdSimulation::new(&cfg);
    let frame = sim.advance_stride();
    c.bench_function("frame/encode_decode", |b| {
        b.iter(|| {
            let bytes = black_box(&frame).to_bytes();
            black_box(kernels::md::Frame::from_bytes(bytes).unwrap().step)
        })
    });
}

criterion_group!(benches, bench_md, bench_analysis, bench_frame_codec);
criterion_main!(benches);
