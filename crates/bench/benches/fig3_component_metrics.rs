//! Figure 3 bench: regenerates the component-level traditional metrics
//! for every set-one configuration and measures the cost of one full
//! configuration evaluation.

use bench::{experiments, render};
use criterion::{criterion_group, criterion_main, Criterion};
use ensemble_core::ConfigId;
use runtime::EnsembleRunner;
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    // Regenerate and print the figure's rows once.
    let rows = experiments::fig3_component_metrics().expect("fig3 regeneration");
    println!("\n{}", render::render_fig3(&rows));

    let mut group = c.benchmark_group("fig3");
    for id in [ConfigId::Cf, ConfigId::Cc, ConfigId::C1_5] {
        group.bench_function(format!("run_{}", id.label()), |b| {
            b.iter(|| {
                let report = EnsembleRunner::paper_config(black_box(id))
                    .steps(experiments::STEPS)
                    .jitter(0.0)
                    .run()
                    .expect("run");
                black_box(report.ensemble_makespan)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
