//! Sensitivity studies over the model's tunables:
//!
//! * socket binding policy (spread vs compact);
//! * cache miss-curve exponent;
//! * node power caps (SeeSAw-style power-constrained execution).
//!
//! Each prints its sweep and asserts the qualitative direction, then
//! benchmarks a representative evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use ensemble_core::ConfigId;
use hpc_platform::BindPolicy;
use runtime::{EnsembleRunner, SimRunConfig, WorkloadMap};
use std::hint::black_box;

const STEPS: u64 = 20;

fn runner(id: ConfigId) -> EnsembleRunner {
    EnsembleRunner::paper_config(id).steps(STEPS).jitter(0.0)
}

fn bench_sensitivity(c: &mut Criterion) {
    // --- Binding policy. ---
    let spread = runner(ConfigId::C1_5).run().unwrap().ensemble_makespan;
    let mut compact_runner = runner(ConfigId::C1_5);
    compact_runner.config_mut().bind_policy = BindPolicy::Compact;
    let compact = compact_runner.run().unwrap().ensemble_makespan;
    println!("\nsensitivity — bind policy on C1.5: spread {spread:.1}s, compact {compact:.1}s");

    // --- Miss-curve exponent. ---
    // miss = base + (1−base)(1 − share/ws)^e: for a deficit below 1, a
    // larger exponent is a *gentler* curve (fewer capacity misses), so
    // the miss ratio must fall monotonically with e.
    println!("sensitivity — miss-curve exponent on C1.1 (paired analyses):");
    let mut prev = f64::INFINITY;
    for exponent in [0.5f64, 1.0, 2.0] {
        let mut r = runner(ConfigId::C1_1);
        r.config_mut().interference.cache.miss_curve_exponent = exponent;
        let report = r.run().unwrap();
        let miss = report.members[0].components[1].metrics.llc_miss_ratio;
        println!("  exponent {exponent}: analysis LLC miss ratio {miss:.4}");
        assert!(miss <= prev, "a gentler (higher-exponent) curve must not increase misses");
        prev = miss;
    }

    // --- Power capping. ---
    println!("sensitivity — node power cap on C1.5:");
    let mut uncapped = 0.0f64;
    for cap in [None, Some(320.0f64), Some(260.0), (Some(220.0))] {
        let mut r = runner(ConfigId::C1_5);
        r.config_mut().power_cap_watts = cap;
        let report = r.run().unwrap();
        match cap {
            None => {
                uncapped = report.ensemble_makespan;
                println!("  uncapped: makespan {:.1}s", report.ensemble_makespan);
            }
            Some(w) => {
                println!("  cap {w:>5.0} W: makespan {:.1}s", report.ensemble_makespan);
                assert!(
                    report.ensemble_makespan >= uncapped - 1e-9,
                    "capping cannot speed the run up"
                );
            }
        }
    }
    // A hard cap must actually slow the run.
    let mut hard = runner(ConfigId::C1_5);
    hard.config_mut().power_cap_watts = Some(200.0);
    assert!(hard.run().unwrap().ensemble_makespan > uncapped * 1.02);

    c.bench_function("sensitivity/capped_run", |b| {
        b.iter(|| {
            let mut r = runner(black_box(ConfigId::C1_5));
            r.config_mut().power_cap_watts = Some(260.0);
            black_box(r.run().unwrap().ensemble_makespan)
        })
    });
}

fn bench_predictor_vs_des(c: &mut Criterion) {
    let spec = ConfigId::C2_8.build();
    let cfg = SimRunConfig { n_steps: STEPS, jitter: 0.0, ..SimRunConfig::paper(spec) };
    let mut group = c.benchmark_group("evaluation_path");
    group.bench_function("closed_form_predictor", |b| {
        b.iter(|| black_box(runtime::predict(black_box(&cfg)).unwrap().ensemble_makespan))
    });
    group.bench_function("discrete_event_run", |b| {
        b.iter(|| black_box(runtime::run_simulated(black_box(&cfg)).unwrap().trace.len()))
    });
    group.finish();

    let mut quick = cfg.clone();
    quick.workloads = WorkloadMap::small_defaults();
    let p = runtime::predict(&quick).unwrap();
    println!(
        "\npredictor check: C2.8 predicted makespan {:.2}s over {} members",
        p.ensemble_makespan,
        p.members.len()
    );
}

criterion_group!(benches, bench_sensitivity, bench_predictor_vs_des);
criterion_main!(benches);
