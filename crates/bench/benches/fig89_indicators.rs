//! Figures 8/9 bench: regenerates the multi-stage indicator objectives
//! over both configuration sets and measures indicator evaluation.

use bench::{experiments, render};
use criterion::{criterion_group, criterion_main, Criterion};
use ensemble_core::{ConfigId, IndicatorPath};
use std::hint::black_box;

fn best_at_final(rows: &[bench::experiments::IndicatorRow]) -> String {
    rows.iter()
        .filter(|r| r.path == "U,A,P")
        .max_by(|a, b| a.objective.total_cmp(&b.objective))
        .map(|r| r.config.clone())
        .expect("rows")
}

fn bench_fig89(c: &mut Criterion) {
    let fig8 = experiments::fig8_indicators().expect("fig8 regeneration");
    println!("\nFigure 8:\n{}", render::render_indicators(&fig8));
    assert_eq!(best_at_final(&fig8), "C1.5", "the paper's winner for set one");

    let fig9 = experiments::fig9_indicators().expect("fig9 regeneration");
    println!("Figure 9:\n{}", render::render_indicators(&fig9));
    assert_eq!(best_at_final(&fig9), "C2.8", "the paper's winner for set two");

    c.bench_function("fig89/objective_of_config", |b| {
        b.iter(|| {
            black_box(
                experiments::objective_of(black_box(ConfigId::C2_8), &IndicatorPath::uap())
                    .expect("objective"),
            )
        })
    });
}

criterion_group!(benches, bench_fig89);
criterion_main!(benches);
