//! # kernels — the ensemble components' actual workloads
//!
//! The paper's ensemble members couple a GROMACS molecular-dynamics
//! simulation with a largest-eigenvalue bipartite-matrix analysis. This
//! crate provides real, runnable stand-ins plus their architectural
//! profiles for the simulated platform:
//!
//! * [`md`] — a Lennard-Jones MD engine (cell lists, velocity Verlet,
//!   Berendsen thermostat) producing [`md::Frame`]s every *stride* steps,
//!   exactly the iterative produce/stage pattern of the paper;
//! * [`analysis`] — the bipartite contact-matrix + power-iteration
//!   collective-variable kernel (the analysis the paper runs in situ);
//! * [`synthetic`] — tunable compute/memory kernels for stress tests and
//!   failure injection;
//! * [`profile`] — [`hpc_platform::Workload`] presets calibrated so the
//!   simulated platform reproduces the paper's §3.4 operating point
//!   (20 s simulation steps, the Figure 7 core-count crossover, and the
//!   co-location contention ordering of Figure 3).
//!
//! Both kernels are data-parallel with Rayon and deterministic for a
//! fixed seed.

#![warn(missing_docs)]

pub mod analysis;
pub mod md;
pub mod profile;
pub mod synthetic;

pub use analysis::{AnalysisOutput, CvSeries, EigenAnalysis};
pub use md::{Frame, MdConfig, MdSimulation};
pub use profile::{analysis_workload, frame_bytes, simulation_workload};
pub use synthetic::SyntheticKernel;
