//! The molecular system: positions, velocities, forces in a cubic periodic
//! box, in reduced Lennard-Jones units (σ = ε = m = 1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A 3-vector of coordinates.
pub type Vec3 = [f64; 3];

/// State of an N-atom system in a cubic periodic box.
#[derive(Debug, Clone)]
pub struct MolecularSystem {
    /// Atom positions, wrapped into `[0, box_len)³`.
    pub positions: Vec<Vec3>,
    /// Atom velocities.
    pub velocities: Vec<Vec3>,
    /// Forces from the last evaluation.
    pub forces: Vec<Vec3>,
    /// Edge length of the cubic box.
    pub box_len: f64,
}

impl MolecularSystem {
    /// Builds a system of `n_per_side³` atoms on a simple cubic lattice at
    /// the given number density, with Maxwell-Boltzmann velocities at
    /// `temperature` drawn from a seeded RNG (deterministic).
    pub fn lattice(n_per_side: usize, density: f64, temperature: f64, seed: u64) -> Self {
        assert!(n_per_side > 0 && density > 0.0);
        let n = n_per_side * n_per_side * n_per_side;
        let box_len = (n as f64 / density).cbrt();
        let spacing = box_len / n_per_side as f64;
        let mut positions = Vec::with_capacity(n);
        for x in 0..n_per_side {
            for y in 0..n_per_side {
                for z in 0..n_per_side {
                    positions.push([
                        (x as f64 + 0.5) * spacing,
                        (y as f64 + 0.5) * spacing,
                        (z as f64 + 0.5) * spacing,
                    ]);
                }
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut velocities: Vec<Vec3> = (0..n)
            .map(|_| {
                // Box-Muller-free approximation: sum of uniforms is close
                // enough to Gaussian for equipartition purposes and cheap.
                let mut g = || -> f64 {
                    let s: f64 = (0..12).map(|_| rng.random::<f64>()).sum();
                    s - 6.0
                };
                [g(), g(), g()]
            })
            .collect();
        // Remove centre-of-mass drift.
        let mut com = [0.0f64; 3];
        for v in &velocities {
            for d in 0..3 {
                com[d] += v[d];
            }
        }
        for v in &mut velocities {
            for d in 0..3 {
                v[d] -= com[d] / n as f64;
            }
        }
        let mut sys = MolecularSystem { positions, velocities, forces: vec![[0.0; 3]; n], box_len };
        sys.rescale_to_temperature(temperature);
        sys
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True iff the system holds no atoms.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Total kinetic energy `Σ ½ m v²` (m = 1).
    pub fn kinetic_energy(&self) -> f64 {
        0.5 * self.velocities.iter().map(|v| v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sum::<f64>()
    }

    /// Instantaneous temperature from equipartition:
    /// `T = 2 Eₖ / (3 N)` (k_B = 1).
    pub fn temperature(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        2.0 * self.kinetic_energy() / (3.0 * self.len() as f64)
    }

    /// Rescales velocities so the instantaneous temperature equals `t`.
    pub fn rescale_to_temperature(&mut self, t: f64) {
        let current = self.temperature();
        if current <= 0.0 {
            return;
        }
        let factor = (t / current).sqrt();
        for v in &mut self.velocities {
            for x in v.iter_mut() {
                *x *= factor;
            }
        }
    }

    /// Minimum-image displacement from atom `j` to atom `i`.
    #[inline]
    pub fn min_image(&self, i: usize, j: usize) -> Vec3 {
        let mut dr = [0.0; 3];
        for (d, out) in dr.iter_mut().enumerate() {
            let mut x = self.positions[i][d] - self.positions[j][d];
            x -= self.box_len * (x / self.box_len).round();
            *out = x;
        }
        dr
    }

    /// Wraps all positions back into the primary box.
    pub fn wrap_positions(&mut self) {
        let l = self.box_len;
        for p in &mut self.positions {
            for x in p.iter_mut() {
                *x -= l * (*x / l).floor();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_builds_requested_size() {
        let s = MolecularSystem::lattice(4, 0.8, 1.0, 42);
        assert_eq!(s.len(), 64);
        assert!(!s.is_empty());
        assert!((s.box_len - (64.0f64 / 0.8).cbrt()).abs() < 1e-12);
    }

    #[test]
    fn initial_temperature_matches_request() {
        let s = MolecularSystem::lattice(5, 0.8, 1.5, 7);
        assert!((s.temperature() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn zero_net_momentum() {
        let s = MolecularSystem::lattice(4, 0.8, 1.0, 11);
        let mut p = [0.0f64; 3];
        for v in &s.velocities {
            for (acc, vd) in p.iter_mut().zip(v) {
                *acc += vd;
            }
        }
        for (d, pd) in p.iter().enumerate() {
            assert!(pd.abs() < 1e-9, "net momentum component {d} = {pd}");
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = MolecularSystem::lattice(3, 0.8, 1.0, 5);
        let b = MolecularSystem::lattice(3, 0.8, 1.0, 5);
        assert_eq!(a.velocities, b.velocities);
        let c = MolecularSystem::lattice(3, 0.8, 1.0, 6);
        assert_ne!(a.velocities, c.velocities);
    }

    #[test]
    fn min_image_is_short() {
        let mut s = MolecularSystem::lattice(3, 0.5, 1.0, 1);
        // Put two atoms across the periodic boundary.
        s.positions[0] = [0.1, 0.0, 0.0];
        s.positions[1] = [s.box_len - 0.1, 0.0, 0.0];
        let dr = s.min_image(0, 1);
        assert!((dr[0] - 0.2).abs() < 1e-12, "dx {}", dr[0]);
    }

    #[test]
    fn wrap_positions_bounds() {
        let mut s = MolecularSystem::lattice(3, 0.8, 1.0, 1);
        s.positions[0] = [-0.5, s.box_len + 0.25, 0.5];
        s.wrap_positions();
        for d in 0..3 {
            assert!(s.positions[0][d] >= 0.0 && s.positions[0][d] < s.box_len);
        }
    }
}
