//! Quantized (lossy) frame compression for staging — the XTC-style
//! trick: positions are snapped to a uniform grid over the box and
//! stored as `u16` per coordinate, halving the wire size of a frame
//! with a bounded, user-chosen precision.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use super::frame::{Frame, FrameDecodeError};

/// Wire magic for the quantized format ("INSQ").
const MAGIC: u32 = 0x494E_5351;

/// Encodes a frame with coordinates quantized to `u16` grid cells over
/// `[0, box_len)`. The maximum round-trip error per coordinate is
/// `box_len / 65536 / 2`.
pub fn encode_quantized(frame: &Frame) -> Bytes {
    let mut buf = BytesMut::with_capacity(28 + frame.num_atoms() * 6);
    buf.put_u32_le(MAGIC);
    buf.put_u64_le(frame.step);
    buf.put_f64_le(frame.time);
    buf.put_f32_le(frame.box_len);
    buf.put_u64_le(frame.num_atoms() as u64);
    let scale = 65535.0 / frame.box_len.max(f32::MIN_POSITIVE);
    for p in &frame.positions {
        for &x in p {
            // Wrap defensively, then quantize.
            let mut v = x;
            if v < 0.0 {
                v += frame.box_len;
            }
            if v >= frame.box_len {
                v -= frame.box_len;
            }
            let q = (v * scale).clamp(0.0, 65535.0) as u16;
            buf.put_u16_le(q);
        }
    }
    buf.freeze()
}

/// Decodes a quantized frame.
pub fn decode_quantized(mut data: Bytes) -> Result<Frame, FrameDecodeError> {
    if data.len() < 32 {
        return Err(FrameDecodeError::Truncated);
    }
    if data.get_u32_le() != MAGIC {
        return Err(FrameDecodeError::BadMagic);
    }
    let step = data.get_u64_le();
    let time = data.get_f64_le();
    let box_len = data.get_f32_le();
    let n = data.get_u64_le() as usize;
    if data.remaining() < n * 6 {
        return Err(FrameDecodeError::LengthMismatch {
            expected_atoms: n,
            available_bytes: data.remaining(),
        });
    }
    let inv_scale = box_len / 65535.0;
    let mut positions = Vec::with_capacity(n);
    for _ in 0..n {
        positions.push([
            data.get_u16_le() as f32 * inv_scale,
            data.get_u16_le() as f32 * inv_scale,
            data.get_u16_le() as f32 * inv_scale,
        ]);
    }
    Ok(Frame { step, time, box_len, positions })
}

/// Bytes of the quantized encoding for `atoms` atoms.
pub fn quantized_len(atoms: usize) -> usize {
    32 + atoms * 6
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> Frame {
        Frame {
            step: 7,
            time: 0.014,
            box_len: 12.5,
            positions: vec![[0.0, 6.25, 12.49], [3.3, 9.9, 0.01], [11.1, 2.2, 5.5]],
        }
    }

    #[test]
    fn roundtrip_error_is_bounded() {
        let f = frame();
        let decoded = decode_quantized(encode_quantized(&f)).unwrap();
        assert_eq!(decoded.step, f.step);
        assert_eq!(decoded.num_atoms(), f.num_atoms());
        let tolerance = f.box_len / 65535.0; // one grid cell
        for (a, b) in decoded.positions.iter().zip(&f.positions) {
            for d in 0..3 {
                assert!(
                    (a[d] - b[d]).abs() <= tolerance,
                    "coordinate error {} exceeds one cell {}",
                    (a[d] - b[d]).abs(),
                    tolerance
                );
            }
        }
    }

    #[test]
    fn compression_ratio_is_roughly_half() {
        let f = Frame { step: 0, time: 0.0, box_len: 10.0, positions: vec![[1.0; 3]; 10_000] };
        let full = f.to_bytes().len();
        let quant = encode_quantized(&f).len();
        assert_eq!(quant, quantized_len(10_000));
        assert!((quant as f64) < 0.55 * full as f64, "quantized {quant} vs full {full}");
    }

    #[test]
    fn negative_and_overflow_coordinates_are_wrapped() {
        let f = Frame { step: 0, time: 0.0, box_len: 10.0, positions: vec![[-0.5, 10.2, 5.0]] };
        let decoded = decode_quantized(encode_quantized(&f)).unwrap();
        let p = decoded.positions[0];
        assert!((p[0] - 9.5).abs() < 1e-3, "wrapped -0.5 → 9.5, got {}", p[0]);
        assert!((p[1] - 0.2).abs() < 1e-3, "wrapped 10.2 → 0.2, got {}", p[1]);
    }

    #[test]
    fn rejects_corrupt_input() {
        assert_eq!(
            decode_quantized(Bytes::from_static(b"short")),
            Err(FrameDecodeError::Truncated)
        );
        let mut raw = encode_quantized(&frame()).to_vec();
        raw[0] ^= 0xFF;
        assert_eq!(decode_quantized(Bytes::from(raw)), Err(FrameDecodeError::BadMagic));
        let good = encode_quantized(&frame());
        let cut = good.slice(0..good.len() - 3);
        assert!(matches!(decode_quantized(cut), Err(FrameDecodeError::LengthMismatch { .. })));
    }

    #[test]
    fn analysis_survives_quantization() {
        // The eigenvalue CV over a quantized frame stays within a tight
        // tolerance of the exact one.
        use crate::analysis::EigenAnalysis;
        use crate::md::{MdConfig, MdSimulation};
        let mut sim =
            MdSimulation::new(&MdConfig { atoms_per_side: 4, stride: 10, ..Default::default() });
        let f = sim.advance_stride();
        let q = decode_quantized(encode_quantized(&f)).unwrap();
        let kernel = EigenAnalysis::interleaved(f.num_atoms(), 16, 1.2);
        let exact = kernel.analyze(&f).collective_variable;
        let lossy = kernel.analyze(&q).collective_variable;
        assert!((exact - lossy).abs() / exact < 1e-3, "CV drifted: {exact} vs {lossy}");
    }
}
