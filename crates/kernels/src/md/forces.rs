//! Lennard-Jones force and energy evaluation, data-parallel with Rayon.
//!
//! The 12-6 potential is truncated and shifted at the cutoff so energy is
//! continuous: `u(r) = 4(r⁻¹² − r⁻⁶) − u_c` for `r < r_c`.

use rayon::prelude::*;

use super::cell_list::CellList;
use super::system::{MolecularSystem, Vec3};

/// Parameters of the truncated-shifted LJ potential (reduced units).
#[derive(Debug, Clone, Copy)]
pub struct LjParams {
    /// Interaction cutoff radius.
    pub cutoff: f64,
}

impl Default for LjParams {
    fn default() -> Self {
        LjParams { cutoff: 2.5 }
    }
}

impl LjParams {
    /// Potential shift so `u(r_c) = 0`.
    pub fn energy_shift(&self) -> f64 {
        let inv6 = self.cutoff.powi(-6);
        4.0 * (inv6 * inv6 - inv6)
    }
}

/// Force-evaluation results beyond the forces themselves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForceResult {
    /// Total potential energy.
    pub potential: f64,
    /// Pair virial `Σ_{i<j} f_ij · r_ij` (used for the pressure).
    pub virial: f64,
}

/// Evaluates forces for every atom and returns the total potential energy.
///
/// Each atom's force is computed independently from its cell
/// neighbourhood (pairs are visited twice; energy and virial are
/// half-counted), which is race-free and parallelizes over atoms with no
/// synchronization.
pub fn compute_forces(system: &mut MolecularSystem, params: &LjParams) -> f64 {
    compute_forces_full(system, params).potential
}

/// Like [`compute_forces`] but also accumulates the pair virial.
pub fn compute_forces_full(system: &mut MolecularSystem, params: &LjParams) -> ForceResult {
    let cl = CellList::build(system, params.cutoff);
    let cutoff2 = params.cutoff * params.cutoff;
    let shift = params.energy_shift();
    let positions = &system.positions;
    let box_len = system.box_len;

    let results: Vec<(Vec3, f64, f64)> = (0..positions.len())
        .into_par_iter()
        .map(|i| {
            let pi = positions[i];
            let mut force = [0.0f64; 3];
            let mut energy = 0.0f64;
            let mut virial = 0.0f64;
            for cell in cl.neighbourhood(&pi, box_len) {
                for &j in cl.cell(cell) {
                    let j = j as usize;
                    if j == i {
                        continue;
                    }
                    let mut dr = [0.0f64; 3];
                    for d in 0..3 {
                        let mut x = pi[d] - positions[j][d];
                        x -= box_len * (x / box_len).round();
                        dr[d] = x;
                    }
                    let r2 = dr[0] * dr[0] + dr[1] * dr[1] + dr[2] * dr[2];
                    if r2 >= cutoff2 || r2 == 0.0 {
                        continue;
                    }
                    let inv_r2 = 1.0 / r2;
                    let inv_r6 = inv_r2 * inv_r2 * inv_r2;
                    let inv_r12 = inv_r6 * inv_r6;
                    // f(r)/r = 24 (2 r⁻¹² − r⁻⁶) / r²
                    let f_over_r = 24.0 * (2.0 * inv_r12 - inv_r6) * inv_r2;
                    for d in 0..3 {
                        force[d] += f_over_r * dr[d];
                    }
                    // Half-counted: the pair is visited again from j.
                    energy += 0.5 * (4.0 * (inv_r12 - inv_r6) - shift);
                    // Pair virial f_ij · r_ij, also half-counted.
                    virial += 0.5 * f_over_r * r2;
                }
            }
            (force, energy, virial)
        })
        .collect();

    let mut total_energy = 0.0;
    let mut total_virial = 0.0;
    for (i, (f, e, v)) in results.into_iter().enumerate() {
        system.forces[i] = f;
        total_energy += e;
        total_virial += v;
    }
    ForceResult { potential: total_energy, virial: total_virial }
}

/// Instantaneous pressure from the virial theorem (reduced units):
/// `P = (N k_B T + W/3) / V` with `W` the pair virial.
pub fn pressure(system: &MolecularSystem, virial: f64) -> f64 {
    let volume = system.box_len.powi(3);
    if volume <= 0.0 || system.is_empty() {
        return 0.0;
    }
    (system.len() as f64 * system.temperature() + virial / 3.0) / volume
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_atoms_at_minimum_feel_no_force() {
        // LJ minimum at r = 2^(1/6).
        let r_min = 2.0f64.powf(1.0 / 6.0);
        let mut s = MolecularSystem {
            positions: vec![[5.0, 5.0, 5.0], [5.0 + r_min, 5.0, 5.0]],
            velocities: vec![[0.0; 3]; 2],
            forces: vec![[0.0; 3]; 2],
            box_len: 20.0,
        };
        compute_forces(&mut s, &LjParams::default());
        for d in 0..3 {
            assert!(s.forces[0][d].abs() < 1e-9, "force {d}: {}", s.forces[0][d]);
        }
    }

    #[test]
    fn close_pair_repels() {
        let mut s = MolecularSystem {
            positions: vec![[5.0, 5.0, 5.0], [5.9, 5.0, 5.0]],
            velocities: vec![[0.0; 3]; 2],
            forces: vec![[0.0; 3]; 2],
            box_len: 20.0,
        };
        compute_forces(&mut s, &LjParams::default());
        // Atom 0 is pushed in -x, atom 1 in +x.
        assert!(s.forces[0][0] < 0.0);
        assert!(s.forces[1][0] > 0.0);
    }

    #[test]
    fn newtons_third_law() {
        let mut s = MolecularSystem::lattice(4, 0.8, 1.0, 9);
        compute_forces(&mut s, &LjParams::default());
        let mut net = [0.0f64; 3];
        for f in &s.forces {
            for (acc, fd) in net.iter_mut().zip(f) {
                *acc += fd;
            }
        }
        for (d, nd) in net.iter().enumerate() {
            assert!(nd.abs() < 1e-6, "net force component {d} = {nd}");
        }
    }

    #[test]
    fn energy_is_negative_near_equilibrium_density() {
        let mut s = MolecularSystem::lattice(5, 0.8, 1.0, 9);
        let e = compute_forces(&mut s, &LjParams::default());
        assert!(e < 0.0, "cohesive LJ energy expected, got {e}");
    }

    #[test]
    fn virial_matches_brute_force() {
        let mut s = MolecularSystem::lattice(3, 0.7, 1.0, 33);
        let params = LjParams::default();
        let result = compute_forces_full(&mut s, &params);
        // O(N²) reference virial.
        let cutoff2 = params.cutoff * params.cutoff;
        let n = s.len();
        let mut w_ref = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                let dr = s.min_image(i, j);
                let r2 = dr[0] * dr[0] + dr[1] * dr[1] + dr[2] * dr[2];
                if r2 >= cutoff2 {
                    continue;
                }
                let inv_r2 = 1.0 / r2;
                let inv_r6 = inv_r2 * inv_r2 * inv_r2;
                let inv_r12 = inv_r6 * inv_r6;
                w_ref += 24.0 * (2.0 * inv_r12 - inv_r6) * inv_r2 * r2;
            }
        }
        assert!((result.virial - w_ref).abs() < 1e-9, "virial {} vs {}", result.virial, w_ref);
    }

    #[test]
    fn pressure_is_positive_for_dense_fluid() {
        // At density 0.9 and T 1.5 a LJ fluid is strongly repulsive:
        // positive pressure.
        let mut s = MolecularSystem::lattice(5, 0.9, 1.5, 34);
        let result = compute_forces_full(&mut s, &LjParams::default());
        let p = pressure(&s, result.virial);
        assert!(p > 0.0, "pressure {p}");
    }

    #[test]
    fn empty_system_pressure_is_zero() {
        let s =
            MolecularSystem { positions: vec![], velocities: vec![], forces: vec![], box_len: 5.0 };
        assert_eq!(pressure(&s, 0.0), 0.0);
    }

    #[test]
    fn matches_brute_force() {
        let mut s = MolecularSystem::lattice(3, 0.7, 1.0, 21);
        let params = LjParams::default();
        let e_fast = compute_forces(&mut s, &params);
        let fast_forces = s.forces.clone();

        // O(N²) reference.
        let cutoff2 = params.cutoff * params.cutoff;
        let shift = params.energy_shift();
        let n = s.len();
        let mut e_ref = 0.0;
        let mut f_ref = vec![[0.0f64; 3]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let dr = s.min_image(i, j);
                let r2 = dr[0] * dr[0] + dr[1] * dr[1] + dr[2] * dr[2];
                if r2 >= cutoff2 {
                    continue;
                }
                let inv_r2 = 1.0 / r2;
                let inv_r6 = inv_r2 * inv_r2 * inv_r2;
                let inv_r12 = inv_r6 * inv_r6;
                let f_over_r = 24.0 * (2.0 * inv_r12 - inv_r6) * inv_r2;
                for d in 0..3 {
                    f_ref[i][d] += f_over_r * dr[d];
                    f_ref[j][d] -= f_over_r * dr[d];
                }
                e_ref += 4.0 * (inv_r12 - inv_r6) - shift;
            }
        }
        assert!((e_fast - e_ref).abs() < 1e-9, "energy {e_fast} vs {e_ref}");
        for i in 0..n {
            for d in 0..3 {
                assert!(
                    (fast_forces[i][d] - f_ref[i][d]).abs() < 1e-9,
                    "force mismatch atom {i} dim {d}"
                );
            }
        }
    }
}
