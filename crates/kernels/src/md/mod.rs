//! A real molecular-dynamics engine: the reproduction's stand-in for
//! GROMACS. Lennard-Jones particles, linked-cell neighbour search,
//! velocity-Verlet integration, optional Berendsen thermostat, and frame
//! production every *stride* steps.

pub mod cell_list;
pub mod forces;
pub mod frame;
pub mod integrator;
pub mod quantized;
pub mod sim;
pub mod system;
pub mod thermostat;

pub use cell_list::CellList;
pub use forces::{compute_forces, compute_forces_full, pressure, ForceResult, LjParams};
pub use frame::{Frame, FrameDecodeError};
pub use integrator::velocity_verlet_step;
pub use quantized::{decode_quantized, encode_quantized, quantized_len};
pub use sim::{MdConfig, MdSimulation};
pub use system::{MolecularSystem, Vec3};
pub use thermostat::Berendsen;
