//! The MD simulation driver: the "GROMACS" of the reproduction.
//!
//! Runs velocity-Verlet LJ dynamics and emits a [`Frame`] every `stride`
//! steps — the iterative produce/stage pattern of the paper's simulations
//! (§2.1: "the simulation periodically writes out the data").

use super::forces::{compute_forces, LjParams};
use super::frame::Frame;
use super::integrator::velocity_verlet_step;
use super::system::MolecularSystem;
use super::thermostat::Berendsen;

/// Configuration of an MD run.
#[derive(Debug, Clone)]
pub struct MdConfig {
    /// Atoms per lattice edge (total atoms = cube of this).
    pub atoms_per_side: usize,
    /// Number density (reduced units).
    pub density: f64,
    /// Initial / target temperature.
    pub temperature: f64,
    /// Integration time step (reduced units; the paper's 2 fs analogue).
    pub dt: f64,
    /// LJ cutoff.
    pub cutoff: f64,
    /// Steps between staged frames (the paper's *stride*, 800 there).
    pub stride: u64,
    /// Thermostat coupling constant; `None` runs NVE.
    pub thermostat_tau: Option<f64>,
    /// RNG seed for initial velocities.
    pub seed: u64,
}

impl Default for MdConfig {
    fn default() -> Self {
        MdConfig {
            atoms_per_side: 8,
            density: 0.8,
            temperature: 1.0,
            dt: 0.002,
            cutoff: 2.5,
            stride: 50,
            thermostat_tau: Some(0.1),
            seed: 2021,
        }
    }
}

/// A running MD simulation that produces frames every stride.
pub struct MdSimulation {
    system: MolecularSystem,
    params: LjParams,
    thermostat: Option<Berendsen>,
    dt: f64,
    stride: u64,
    step: u64,
    last_potential: f64,
}

impl MdSimulation {
    /// Initializes the system and computes initial forces.
    pub fn new(config: &MdConfig) -> Self {
        let mut system = MolecularSystem::lattice(
            config.atoms_per_side,
            config.density,
            config.temperature,
            config.seed,
        );
        let params = LjParams { cutoff: config.cutoff };
        let last_potential = compute_forces(&mut system, &params);
        MdSimulation {
            system,
            params,
            thermostat: config
                .thermostat_tau
                .map(|tau| Berendsen { target: config.temperature, tau }),
            dt: config.dt,
            stride: config.stride.max(1),
            step: 0,
            last_potential,
        }
    }

    /// Current MD step index.
    pub fn step_index(&self) -> u64 {
        self.step
    }

    /// Number of atoms.
    pub fn num_atoms(&self) -> usize {
        self.system.len()
    }

    /// Potential energy after the most recent step.
    pub fn potential_energy(&self) -> f64 {
        self.last_potential
    }

    /// Total energy (kinetic + potential).
    pub fn total_energy(&self) -> f64 {
        self.last_potential + self.system.kinetic_energy()
    }

    /// Instantaneous temperature.
    pub fn temperature(&self) -> f64 {
        self.system.temperature()
    }

    /// Read access to the system.
    pub fn system(&self) -> &MolecularSystem {
        &self.system
    }

    /// Advances `n` MD steps.
    pub fn run_steps(&mut self, n: u64) {
        for _ in 0..n {
            self.last_potential = velocity_verlet_step(&mut self.system, &self.params, self.dt);
            if let Some(t) = self.thermostat {
                t.apply(&mut self.system, self.dt);
            }
            self.step += 1;
        }
    }

    /// Advances one stride and returns the frame produced at its end —
    /// one *in situ step*'s worth of simulation work (the `S` stage).
    pub fn advance_stride(&mut self) -> Frame {
        self.run_steps(self.stride);
        self.snapshot()
    }

    /// A frame of the current state without advancing.
    pub fn snapshot(&self) -> Frame {
        Frame::from_positions(
            self.step,
            self.step as f64 * self.dt,
            self.system.box_len,
            &self.system.positions,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MdConfig {
        MdConfig { atoms_per_side: 4, stride: 10, ..Default::default() }
    }

    #[test]
    fn stride_produces_frames_at_stride_boundaries() {
        let mut sim = MdSimulation::new(&small());
        let f1 = sim.advance_stride();
        assert_eq!(f1.step, 10);
        let f2 = sim.advance_stride();
        assert_eq!(f2.step, 20);
        assert_eq!(f1.num_atoms(), 64);
    }

    #[test]
    fn frames_differ_between_strides() {
        let mut sim = MdSimulation::new(&small());
        let f1 = sim.advance_stride();
        let f2 = sim.advance_stride();
        assert_ne!(f1.positions, f2.positions);
    }

    #[test]
    fn thermostatted_run_stays_near_target() {
        let mut sim = MdSimulation::new(&MdConfig {
            atoms_per_side: 4,
            stride: 20,
            thermostat_tau: Some(0.05),
            ..Default::default()
        });
        for _ in 0..10 {
            sim.advance_stride();
        }
        let t = sim.temperature();
        assert!((t - 1.0).abs() < 0.25, "temperature wandered to {t}");
    }

    #[test]
    fn deterministic_trajectories() {
        let cfg = small();
        let mut a = MdSimulation::new(&cfg);
        let mut b = MdSimulation::new(&cfg);
        assert_eq!(a.advance_stride(), b.advance_stride());
    }

    #[test]
    fn snapshot_does_not_advance() {
        let sim = MdSimulation::new(&small());
        let s1 = sim.snapshot();
        let s2 = sim.snapshot();
        assert_eq!(s1, s2);
        assert_eq!(sim.step_index(), 0);
    }
}
