//! Trajectory frames: the data a simulation stages for in situ analysis.
//!
//! Frames carry single-precision positions (as trajectory formats do) plus
//! the MD step index and physical time; [`Frame::to_bytes`] /
//! [`Frame::from_bytes`] give the canonical little-endian wire encoding
//! used by the DTL plugins.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A snapshot of atomic positions at one output step.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// MD step index at which the frame was produced.
    pub step: u64,
    /// Physical time of the frame (simulation units).
    pub time: f64,
    /// Box edge length.
    pub box_len: f32,
    /// Positions, one `[x, y, z]` triple per atom.
    pub positions: Vec<[f32; 3]>,
}

/// Wire-format magic ("INSF") guarding against decoding junk.
const MAGIC: u32 = 0x494E_5346;

/// Errors from frame decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameDecodeError {
    /// Buffer shorter than the fixed header.
    Truncated,
    /// Magic bytes did not match.
    BadMagic,
    /// Header promised more atoms than the buffer contains.
    LengthMismatch {
        /// Atoms promised by the header.
        expected_atoms: usize,
        /// Bytes actually available for positions.
        available_bytes: usize,
    },
}

impl std::fmt::Display for FrameDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameDecodeError::Truncated => write!(f, "frame buffer truncated"),
            FrameDecodeError::BadMagic => write!(f, "frame magic mismatch"),
            FrameDecodeError::LengthMismatch { expected_atoms, available_bytes } => write!(
                f,
                "frame header promises {expected_atoms} atoms but only {available_bytes} bytes remain"
            ),
        }
    }
}

impl std::error::Error for FrameDecodeError {}

impl Frame {
    /// Number of atoms in the frame.
    pub fn num_atoms(&self) -> usize {
        self.positions.len()
    }

    /// Size of the wire encoding in bytes.
    pub fn encoded_len(&self) -> usize {
        4 + 8 + 8 + 4 + 8 + self.positions.len() * 12
    }

    /// Serializes the frame to its little-endian wire format.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        buf.put_u32_le(MAGIC);
        buf.put_u64_le(self.step);
        buf.put_f64_le(self.time);
        buf.put_f32_le(self.box_len);
        buf.put_u64_le(self.positions.len() as u64);
        for p in &self.positions {
            buf.put_f32_le(p[0]);
            buf.put_f32_le(p[1]);
            buf.put_f32_le(p[2]);
        }
        buf.freeze()
    }

    /// Decodes a frame from its wire format.
    pub fn from_bytes(mut data: Bytes) -> Result<Frame, FrameDecodeError> {
        if data.len() < 32 {
            return Err(FrameDecodeError::Truncated);
        }
        if data.get_u32_le() != MAGIC {
            return Err(FrameDecodeError::BadMagic);
        }
        let step = data.get_u64_le();
        let time = data.get_f64_le();
        let box_len = data.get_f32_le();
        let n = data.get_u64_le() as usize;
        if data.remaining() < n * 12 {
            return Err(FrameDecodeError::LengthMismatch {
                expected_atoms: n,
                available_bytes: data.remaining(),
            });
        }
        let mut positions = Vec::with_capacity(n);
        for _ in 0..n {
            positions.push([data.get_f32_le(), data.get_f32_le(), data.get_f32_le()]);
        }
        Ok(Frame { step, time, box_len, positions })
    }

    /// Builds a frame by down-converting double-precision positions.
    pub fn from_positions(step: u64, time: f64, box_len: f64, positions: &[[f64; 3]]) -> Frame {
        Frame {
            step,
            time,
            box_len: box_len as f32,
            positions: positions.iter().map(|p| [p[0] as f32, p[1] as f32, p[2] as f32]).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> Frame {
        Frame {
            step: 800,
            time: 1.6,
            box_len: 9.5,
            positions: vec![[1.0, 2.0, 3.0], [4.5, 5.5, 6.5]],
        }
    }

    #[test]
    fn roundtrip() {
        let f = frame();
        let decoded = Frame::from_bytes(f.to_bytes()).unwrap();
        assert_eq!(decoded, f);
    }

    #[test]
    fn encoded_len_matches() {
        let f = frame();
        assert_eq!(f.to_bytes().len(), f.encoded_len());
    }

    #[test]
    fn rejects_truncated() {
        let f = frame();
        let bytes = f.to_bytes();
        let cut = bytes.slice(0..10);
        assert_eq!(Frame::from_bytes(cut), Err(FrameDecodeError::Truncated));
    }

    #[test]
    fn rejects_bad_magic() {
        let f = frame();
        let mut raw = f.to_bytes().to_vec();
        raw[0] ^= 0xFF;
        assert_eq!(Frame::from_bytes(Bytes::from(raw)), Err(FrameDecodeError::BadMagic));
    }

    #[test]
    fn rejects_length_mismatch() {
        let f = frame();
        let bytes = f.to_bytes();
        let cut = bytes.slice(0..bytes.len() - 4);
        assert!(matches!(
            Frame::from_bytes(cut),
            Err(FrameDecodeError::LengthMismatch { expected_atoms: 2, .. })
        ));
    }

    #[test]
    fn empty_frame_roundtrips() {
        let f = Frame { step: 0, time: 0.0, box_len: 1.0, positions: vec![] };
        assert_eq!(Frame::from_bytes(f.to_bytes()).unwrap(), f);
    }

    #[test]
    fn from_positions_downcasts() {
        let f = Frame::from_positions(1, 0.5, 10.0, &[[1.5, 2.5, 3.5]]);
        assert_eq!(f.positions, vec![[1.5f32, 2.5, 3.5]]);
        assert_eq!(f.box_len, 10.0f32);
    }
}
