//! Velocity-Verlet time integration.

use super::forces::{compute_forces, LjParams};
use super::system::MolecularSystem;

/// One velocity-Verlet step of size `dt`; returns the potential energy at
/// the end of the step. Forces in `system.forces` must be current on entry
/// (call [`compute_forces`] once before the first step).
pub fn velocity_verlet_step(system: &mut MolecularSystem, params: &LjParams, dt: f64) -> f64 {
    let half_dt = 0.5 * dt;
    // v(t + dt/2), x(t + dt)
    for i in 0..system.len() {
        for d in 0..3 {
            system.velocities[i][d] += half_dt * system.forces[i][d];
            system.positions[i][d] += dt * system.velocities[i][d];
        }
    }
    system.wrap_positions();
    // F(t + dt)
    let potential = compute_forces(system, params);
    // v(t + dt)
    for i in 0..system.len() {
        for d in 0..3 {
            system.velocities[i][d] += half_dt * system.forces[i][d];
        }
    }
    potential
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_is_conserved_in_nve() {
        let mut s = MolecularSystem::lattice(4, 0.8, 0.8, 13);
        let params = LjParams::default();
        let dt = 0.002;
        let e0 = compute_forces(&mut s, &params) + s.kinetic_energy();
        let mut final_e = e0;
        for _ in 0..200 {
            let pot = velocity_verlet_step(&mut s, &params, dt);
            final_e = pot + s.kinetic_energy();
        }
        let drift = ((final_e - e0) / e0).abs();
        assert!(drift < 5e-3, "energy drift {drift} too large (e0={e0}, e={final_e})");
    }

    #[test]
    fn atoms_move() {
        let mut s = MolecularSystem::lattice(3, 0.8, 1.0, 14);
        let p0 = s.positions.clone();
        let params = LjParams::default();
        compute_forces(&mut s, &params);
        for _ in 0..10 {
            velocity_verlet_step(&mut s, &params, 0.002);
        }
        let moved = s
            .positions
            .iter()
            .zip(&p0)
            .any(|(a, b)| a.iter().zip(b).any(|(x, y)| (x - y).abs() > 1e-6));
        assert!(moved);
    }

    #[test]
    fn integration_is_deterministic() {
        let run = || {
            let mut s = MolecularSystem::lattice(3, 0.8, 1.0, 15);
            let params = LjParams::default();
            compute_forces(&mut s, &params);
            for _ in 0..20 {
                velocity_verlet_step(&mut s, &params, 0.002);
            }
            s.positions
        };
        assert_eq!(run(), run());
    }
}
