//! Berendsen weak-coupling thermostat.

use super::system::MolecularSystem;

/// Berendsen thermostat: velocities are scaled toward the target
/// temperature with relaxation time `tau` (in the same units as `dt`).
#[derive(Debug, Clone, Copy)]
pub struct Berendsen {
    /// Target temperature.
    pub target: f64,
    /// Coupling time constant; larger = gentler.
    pub tau: f64,
}

impl Berendsen {
    /// Applies one thermostat step after an integration step of size `dt`.
    pub fn apply(&self, system: &mut MolecularSystem, dt: f64) {
        let current = system.temperature();
        if current <= 0.0 {
            return;
        }
        let lambda = (1.0 + dt / self.tau * (self.target / current - 1.0)).max(0.0).sqrt();
        for v in &mut system.velocities {
            for x in v.iter_mut() {
                *x *= lambda;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::md::forces::{compute_forces, LjParams};
    use crate::md::integrator::velocity_verlet_step;

    #[test]
    fn drives_temperature_to_target() {
        let mut s = MolecularSystem::lattice(4, 0.8, 2.0, 31);
        let params = LjParams::default();
        let thermostat = Berendsen { target: 1.0, tau: 0.02 };
        compute_forces(&mut s, &params);
        for _ in 0..300 {
            velocity_verlet_step(&mut s, &params, 0.002);
            thermostat.apply(&mut s, 0.002);
        }
        let t = s.temperature();
        assert!((t - 1.0).abs() < 0.15, "temperature {t} not near target");
    }

    #[test]
    fn identity_when_at_target() {
        let mut s = MolecularSystem::lattice(3, 0.8, 1.0, 32);
        let before = s.velocities.clone();
        Berendsen { target: s.temperature(), tau: 0.1 }.apply(&mut s, 0.002);
        for (a, b) in s.velocities.iter().zip(&before) {
            for d in 0..3 {
                assert!((a[d] - b[d]).abs() < 1e-12);
            }
        }
    }
}
