//! Linked-cell neighbour search: O(N) force evaluation for short-range
//! potentials.

use super::system::MolecularSystem;

/// A spatial decomposition of the box into cubic cells at least as wide as
/// the interaction cutoff, so that all neighbours of an atom lie in its own
/// or the 26 adjacent cells.
#[derive(Debug, Clone)]
pub struct CellList {
    /// Cells per box edge.
    pub cells_per_side: usize,
    /// Cell edge length.
    pub cell_len: f64,
    /// Atom indices per cell, `cells_per_side³` entries.
    cells: Vec<Vec<u32>>,
}

impl CellList {
    /// Builds the cell list for the current positions with the given
    /// cutoff. Falls back to a single cell when the box is small.
    pub fn build(system: &MolecularSystem, cutoff: f64) -> Self {
        assert!(cutoff > 0.0, "cutoff must be positive");
        let cells_per_side = ((system.box_len / cutoff).floor() as usize).max(1);
        let cell_len = system.box_len / cells_per_side as f64;
        let n_cells = cells_per_side * cells_per_side * cells_per_side;
        let mut cells: Vec<Vec<u32>> = vec![Vec::new(); n_cells];
        for (i, p) in system.positions.iter().enumerate() {
            let idx = Self::cell_of(p, cell_len, cells_per_side, system.box_len);
            cells[idx].push(i as u32);
        }
        CellList { cells_per_side, cell_len, cells }
    }

    #[inline]
    fn cell_of(p: &[f64; 3], cell_len: f64, cps: usize, box_len: f64) -> usize {
        let mut c = [0usize; 3];
        for d in 0..3 {
            // Positions may sit exactly on the upper boundary after wrap.
            let mut x = p[d];
            if x >= box_len {
                x -= box_len;
            }
            if x < 0.0 {
                x += box_len;
            }
            c[d] = ((x / cell_len) as usize).min(cps - 1);
        }
        (c[0] * cps + c[1]) * cps + c[2]
    }

    /// The cell index containing `p`.
    pub fn cell_index(&self, p: &[f64; 3], box_len: f64) -> usize {
        Self::cell_of(p, self.cell_len, self.cells_per_side, box_len)
    }

    /// Atoms in cell `idx`.
    pub fn cell(&self, idx: usize) -> &[u32] {
        &self.cells[idx]
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Iterates the indices of the 27 cells in the neighbourhood of the
    /// cell containing `p` (with periodic wrap); cells may repeat when the
    /// box is fewer than three cells wide, so the caller deduplicates by
    /// checking atom identity, not cell identity.
    pub fn neighbourhood(&self, p: &[f64; 3], box_len: f64) -> Vec<usize> {
        let cps = self.cells_per_side as isize;
        let idx = self.cell_index(p, box_len);
        let cx = (idx / (self.cells_per_side * self.cells_per_side)) as isize;
        let cy = ((idx / self.cells_per_side) % self.cells_per_side) as isize;
        let cz = (idx % self.cells_per_side) as isize;
        let mut out = Vec::with_capacity(27);
        for dx in -1..=1 {
            for dy in -1..=1 {
                for dz in -1..=1 {
                    let x = (cx + dx).rem_euclid(cps) as usize;
                    let y = (cy + dy).rem_euclid(cps) as usize;
                    let z = (cz + dz).rem_euclid(cps) as usize;
                    let cell = (x * self.cells_per_side + y) * self.cells_per_side + z;
                    if !out.contains(&cell) {
                        out.push(cell);
                    }
                }
            }
        }
        out
    }

    /// Total atoms stored (sanity check: must equal the system size).
    pub fn total_atoms(&self) -> usize {
        self.cells.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system() -> MolecularSystem {
        MolecularSystem::lattice(5, 0.8, 1.0, 3)
    }

    #[test]
    fn all_atoms_binned() {
        let s = system();
        let cl = CellList::build(&s, 2.5);
        assert_eq!(cl.total_atoms(), s.len());
    }

    #[test]
    fn cell_width_at_least_cutoff() {
        let s = system();
        let cl = CellList::build(&s, 2.5);
        assert!(cl.cell_len >= 2.5);
    }

    #[test]
    fn neighbourhood_contains_own_cell() {
        let s = system();
        let cl = CellList::build(&s, 2.5);
        let p = s.positions[7];
        let own = cl.cell_index(&p, s.box_len);
        assert!(cl.neighbourhood(&p, s.box_len).contains(&own));
    }

    #[test]
    fn neighbourhood_covers_all_close_pairs() {
        // Brute-force check: every pair within the cutoff must be findable
        // via the neighbourhood of either atom.
        let s = system();
        let cutoff = 2.5;
        let cl = CellList::build(&s, cutoff);
        for i in 0..s.len() {
            let hood = cl.neighbourhood(&s.positions[i], s.box_len);
            for j in 0..s.len() {
                if i == j {
                    continue;
                }
                let dr = s.min_image(i, j);
                let r2 = dr[0] * dr[0] + dr[1] * dr[1] + dr[2] * dr[2];
                if r2 < cutoff * cutoff {
                    let j_cell = cl.cell_index(&s.positions[j], s.box_len);
                    assert!(
                        hood.contains(&j_cell),
                        "pair ({i},{j}) at r={} not covered",
                        r2.sqrt()
                    );
                }
            }
        }
    }

    #[test]
    fn small_box_degenerates_to_one_cell() {
        let s = MolecularSystem::lattice(2, 0.9, 1.0, 3);
        let cl = CellList::build(&s, s.box_len * 2.0);
        assert_eq!(cl.num_cells(), 1);
        assert_eq!(cl.total_atoms(), s.len());
    }
}
