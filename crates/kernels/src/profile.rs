//! Calibrated architectural profiles of the paper's two component types.
//!
//! The paper ran GROMACS (GltPh transporter, ~medium all-atom system,
//! 2 fs steps, stride 800, frames of atomic positions) coupled with the
//! largest-eigenvalue bipartite-matrix analysis. We cannot run GROMACS on
//! Cori here, so these [`Workload`] profiles reproduce the *architectural
//! behaviour* the paper reports, calibrated against the paper's §3.4
//! operating point:
//!
//! * the 16-core simulation step (one stride) takes ≈ 20 s;
//! * the analysis step is **longer** than the simulation step on 1–4
//!   cores and **shorter** on 8–32 cores (Figure 7), so Eq. 4 selects
//!   8 cores;
//! * analyses are markedly more memory-intensive than simulations
//!   (Figure 3's discussion), so analysis–analysis co-location contends
//!   on LLC capacity while simulation–simulation co-location contends
//!   mildly on DRAM bandwidth.
//!
//! The calibration tests at the bottom of this module pin these shapes
//! against the actual `InterferenceModel` solver.

use hpc_platform::Workload;

/// Atom count of the GltPh-like solvated system whose frames are staged.
pub const GLTPH_ATOMS: usize = 220_000;

/// The paper's simulation stride (MD steps per staged frame).
pub const PAPER_STRIDE: u64 = 800;

/// Total MD steps of a paper run (30 000), i.e. 37 full in situ steps.
pub const PAPER_TOTAL_MD_STEPS: u64 = 30_000;

/// Cores the paper assigns to each simulation.
pub const SIM_CORES: u32 = 16;

/// Cores the paper's §3.4 heuristic selects for each analysis.
pub const ANALYSIS_CORES: u32 = 8;

/// Bytes of one staged frame: positions (3 × f32) per atom plus header.
pub fn frame_bytes(atoms: usize) -> u64 {
    (atoms * 12 + 32) as u64
}

/// Architectural profile of the GROMACS-like simulation for one in situ
/// step at the given stride (work scales linearly with the stride).
///
/// Compute-bound and prefetch-friendly: moderate working set, very low
/// LLC reference rate, high memory-level parallelism, sustained streaming
/// traffic that brings two co-located simulations near the bandwidth knee.
pub fn simulation_workload(stride: u64) -> Workload {
    let scale = stride as f64 / PAPER_STRIDE as f64;
    Workload {
        instructions_per_step: 2.87e11 * scale,
        base_cpi: 0.6,
        llc_refs_per_instr: 0.002,
        base_miss_ratio: 0.03,
        working_set_bytes: 45e6,
        parallel_fraction: 0.98,
        streaming_bytes_per_instr: 4.0,
        mlp_overlap: 0.9,
    }
}

/// Architectural profile of the eigenvalue analysis for one in situ step.
///
/// Memory-bound and irregular: the contact matrix plus power-iteration
/// vectors form a working set (~200 MB) far beyond one LLC, the LLC
/// reference rate is 50× the simulation's, and little of the miss latency
/// is hidden. Calibrated so that on a dedicated node the step takes ≈ 17 s
/// on 8 cores (idle-analyzer against a 20 s simulation) and ≈ 28 s on 4
/// cores (idle-simulation), matching Figure 7's crossover.
pub fn analysis_workload() -> Workload {
    Workload {
        instructions_per_step: 4.30e10,
        base_cpi: 0.5,
        llc_refs_per_instr: 0.1,
        base_miss_ratio: 0.08,
        working_set_bytes: 200e6,
        parallel_fraction: 0.93,
        streaming_bytes_per_instr: 0.2,
        mlp_overlap: 0.7,
    }
}

/// A laptop-scale analogue of [`simulation_workload`] for fast tests:
/// identical ratios, 1000× less work.
pub fn small_simulation_workload() -> Workload {
    simulation_workload(PAPER_STRIDE).scaled(1e-3)
}

/// A laptop-scale analogue of [`analysis_workload`]; the working set is
/// kept (contention shape preserved) but the instruction count shrinks.
pub fn small_analysis_workload() -> Workload {
    let mut w = analysis_workload();
    w.instructions_per_step *= 1e-3;
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpc_platform::cori::{aries_network, cori_node};
    use hpc_platform::{BindPolicy, InterferenceModel, PlacedWorkload, Platform};

    fn step_seconds(workloads: &[(u32, Workload)]) -> Vec<f64> {
        let spec = cori_node();
        let mut platform = Platform::new(1, spec.clone(), aries_network());
        let placed: Vec<PlacedWorkload> = workloads
            .iter()
            .map(|(cores, w)| PlacedWorkload {
                alloc: platform.allocate(0, *cores, BindPolicy::Spread).unwrap(),
                workload: w.clone(),
            })
            .collect();
        InterferenceModel::default()
            .solve_node(&spec, &placed, &[])
            .iter()
            .map(|e| e.seconds_per_step)
            .collect()
    }

    #[test]
    fn simulation_step_is_about_twenty_seconds() {
        let s = step_seconds(&[(SIM_CORES, simulation_workload(PAPER_STRIDE))])[0];
        assert!((15.0..25.0).contains(&s), "simulation step {s} s out of calibration");
    }

    #[test]
    fn figure7_crossover_between_4_and_8_cores() {
        // On dedicated nodes, analysis slower than simulation on 1–4
        // cores, faster on 8–32 (the paper's Eq. 4 boundary).
        let sim = step_seconds(&[(SIM_CORES, simulation_workload(PAPER_STRIDE))])[0];
        for cores in [1u32, 2, 4] {
            let a = step_seconds(&[(cores, analysis_workload())])[0];
            assert!(a > sim, "{cores}-core analysis ({a} s) should exceed sim ({sim} s)");
        }
        for cores in [8u32, 16, 32] {
            let a = step_seconds(&[(cores, analysis_workload())])[0];
            assert!(a < sim, "{cores}-core analysis ({a} s) should beat sim ({sim} s)");
        }
    }

    #[test]
    fn analysis_more_memory_intensive_than_simulation() {
        let sim = simulation_workload(PAPER_STRIDE);
        let ana = analysis_workload();
        assert!(ana.llc_refs_per_instr > 10.0 * sim.llc_refs_per_instr);
        assert!(ana.working_set_bytes > sim.working_set_bytes);
    }

    #[test]
    fn paired_analyses_contend_enough_to_stall_the_member() {
        // Two 8-core analyses sharing a node (C1.1/C1.4 pattern) must push
        // the analysis step beyond the 20 s simulation step.
        let sim = step_seconds(&[(SIM_CORES, simulation_workload(PAPER_STRIDE))])[0];
        let pair = step_seconds(&[
            (ANALYSIS_CORES, analysis_workload()),
            (ANALYSIS_CORES, analysis_workload()),
        ]);
        assert!(
            pair[0] > sim,
            "paired analyses ({} s) must exceed the simulation step ({sim} s)",
            pair[0]
        );
    }

    #[test]
    fn paired_simulations_contend_on_bandwidth() {
        let solo = step_seconds(&[(SIM_CORES, simulation_workload(PAPER_STRIDE))])[0];
        let pair = step_seconds(&[
            (SIM_CORES, simulation_workload(PAPER_STRIDE)),
            (SIM_CORES, simulation_workload(PAPER_STRIDE)),
        ]);
        let slowdown = pair[0] / solo;
        assert!(
            slowdown > 1.03 && slowdown < 1.5,
            "sim-sim slowdown {slowdown} outside the mild-contention band"
        );
    }

    #[test]
    fn colocated_analysis_stays_idle_analyzer() {
        // A simulation plus its own 8-core analysis on one node (C_c,
        // C1.5): the analysis step must remain below the (slightly
        // inflated) simulation step, keeping the coupling idle-analyzer.
        let both = step_seconds(&[
            (SIM_CORES, simulation_workload(PAPER_STRIDE)),
            (ANALYSIS_CORES, analysis_workload()),
        ]);
        assert!(
            both[1] < both[0],
            "co-located analysis ({} s) must not outlast the simulation ({} s)",
            both[1],
            both[0]
        );
    }

    #[test]
    fn stride_scales_simulation_work() {
        let full = simulation_workload(PAPER_STRIDE);
        let half = simulation_workload(PAPER_STRIDE / 2);
        assert!((half.instructions_per_step * 2.0 - full.instructions_per_step).abs() < 1.0);
    }

    #[test]
    fn frame_bytes_matches_wire_format() {
        use crate::md::frame::Frame;
        let n = 100;
        let f = Frame { step: 0, time: 0.0, box_len: 1.0, positions: vec![[0.0; 3]; n] };
        assert_eq!(frame_bytes(n), f.encoded_len() as u64);
    }

    #[test]
    fn small_profiles_preserve_ratios() {
        let big = analysis_workload();
        let small = small_analysis_workload();
        assert!((small.instructions_per_step * 1e3 - big.instructions_per_step).abs() < 1.0);
        assert_eq!(small.working_set_bytes, big.working_set_bytes);
        assert!(small_simulation_workload().validate());
        assert!(small.validate());
    }

    #[test]
    fn profiles_validate() {
        assert!(simulation_workload(PAPER_STRIDE).validate());
        assert!(analysis_workload().validate());
    }
}
