//! Mean-squared displacement: a *stateful* in situ kernel.
//!
//! MSD needs the particle trajectory unwrapped across periodic
//! boundaries, so the kernel keeps the previous frame and accumulated
//! displacements — exercising the "analysis with history" pattern the
//! runtime must support (kernels are owned mutably by their component).

use super::kernel_trait::FrameKernel;
use crate::md::frame::Frame;

/// Mean-squared displacement from the first frame seen.
#[derive(Debug, Clone, Default)]
pub struct MsdKernel {
    origin: Option<Vec<[f64; 3]>>,
    unwrapped: Vec<[f64; 3]>,
    previous: Vec<[f32; 3]>,
}

impl MsdKernel {
    /// A fresh kernel; the first frame becomes the origin (MSD 0).
    pub fn new() -> Self {
        Self::default()
    }

    fn min_image(delta: f64, box_len: f64) -> f64 {
        if box_len > 0.0 {
            delta - box_len * (delta / box_len).round()
        } else {
            delta
        }
    }
}

impl FrameKernel for MsdKernel {
    fn name(&self) -> &str {
        "mean-squared-displacement"
    }

    fn compute(&mut self, frame: &Frame) -> f64 {
        let box_len = frame.box_len as f64;
        match &mut self.origin {
            None => {
                self.origin = Some(
                    frame
                        .positions
                        .iter()
                        .map(|p| [p[0] as f64, p[1] as f64, p[2] as f64])
                        .collect(),
                );
                self.unwrapped = self.origin.clone().expect("just set");
                self.previous = frame.positions.clone();
                0.0
            }
            Some(origin) => {
                assert_eq!(origin.len(), frame.num_atoms(), "atom count changed mid-trajectory");
                // Unwrap: add the minimum-image displacement since the
                // previous frame to the accumulated true positions.
                for i in 0..frame.num_atoms() {
                    for d in 0..3 {
                        let delta = Self::min_image(
                            frame.positions[i][d] as f64 - self.previous[i][d] as f64,
                            box_len,
                        );
                        self.unwrapped[i][d] += delta;
                    }
                }
                self.previous = frame.positions.clone();
                let n = frame.num_atoms().max(1) as f64;
                self.unwrapped
                    .iter()
                    .zip(origin.iter())
                    .map(|(u, o)| (0..3).map(|d| (u[d] - o[d]) * (u[d] - o[d])).sum::<f64>())
                    .sum::<f64>()
                    / n
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(positions: Vec<[f32; 3]>, box_len: f32) -> Frame {
        Frame { step: 0, time: 0.0, box_len, positions }
    }

    #[test]
    fn first_frame_is_zero() {
        let mut k = MsdKernel::new();
        assert_eq!(k.compute(&frame(vec![[1.0, 2.0, 3.0]], 10.0)), 0.0);
    }

    #[test]
    fn uniform_drift_accumulates_quadratically() {
        let mut k = MsdKernel::new();
        k.compute(&frame(vec![[0.0, 0.0, 0.0]], 100.0));
        // Move +1 in x per frame: MSD after m frames = m².
        let mut msd = 0.0;
        for step in 1..=4 {
            msd = k.compute(&frame(vec![[step as f32, 0.0, 0.0]], 100.0));
        }
        assert!((msd - 16.0).abs() < 1e-9, "MSD {msd}");
    }

    #[test]
    fn unwrapping_crosses_periodic_boundary() {
        // Box of 10; atom walks +3 per frame: 8 → 11 ≡ 1 (wrapped).
        // True displacement after two moves is 6, MSD = 36.
        let mut k = MsdKernel::new();
        k.compute(&frame(vec![[8.0, 0.0, 0.0]], 10.0));
        k.compute(&frame(vec![[1.0, 0.0, 0.0]], 10.0)); // wrapped from 11
        let msd = k.compute(&frame(vec![[4.0, 0.0, 0.0]], 10.0));
        assert!((msd - 36.0).abs() < 1e-9, "MSD {msd}");
    }

    #[test]
    fn averages_over_atoms() {
        let mut k = MsdKernel::new();
        k.compute(&frame(vec![[0.0; 3], [0.0; 3]], 100.0));
        // One atom moves 2, the other stays: MSD = (4 + 0) / 2.
        let msd = k.compute(&frame(vec![[2.0, 0.0, 0.0], [0.0; 3]], 100.0));
        assert!((msd - 2.0).abs() < 1e-9);
    }

    #[test]
    fn real_trajectory_msd_grows() {
        use crate::md::{MdConfig, MdSimulation};
        let mut sim =
            MdSimulation::new(&MdConfig { atoms_per_side: 4, stride: 20, ..Default::default() });
        let mut k = MsdKernel::new();
        let mut last = 0.0;
        let mut grew = false;
        for _ in 0..5 {
            let msd = k.compute(&sim.advance_stride());
            if msd > last {
                grew = true;
            }
            last = msd;
        }
        assert!(grew, "a thermal LJ fluid must diffuse");
        assert!(last.is_finite() && last > 0.0);
    }
}
