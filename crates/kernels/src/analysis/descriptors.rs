//! Classical MD trajectory descriptors as in situ kernels: RMSD against
//! a reference frame, radius of gyration, and native-contact count —
//! the collective variables ensemble methods most commonly monitor.

use rayon::prelude::*;

use super::kernel_trait::FrameKernel;
use crate::md::frame::Frame;

fn min_image_d2(a: [f32; 3], b: [f32; 3], box_len: f64) -> f64 {
    let mut d2 = 0.0f64;
    for d in 0..3 {
        let mut x = a[d] as f64 - b[d] as f64;
        if box_len > 0.0 {
            x -= box_len * (x / box_len).round();
        }
        d2 += x * x;
    }
    d2
}

/// Root-mean-square deviation from a reference frame (no alignment —
/// appropriate for position-restrained or box-fixed comparisons).
#[derive(Debug, Clone)]
pub struct RmsdKernel {
    reference: Option<Frame>,
}

impl RmsdKernel {
    /// RMSD against the **first frame seen** (lazily captured).
    pub fn from_first_frame() -> Self {
        RmsdKernel { reference: None }
    }

    /// RMSD against an explicit reference.
    pub fn with_reference(reference: Frame) -> Self {
        RmsdKernel { reference: Some(reference) }
    }
}

impl FrameKernel for RmsdKernel {
    fn name(&self) -> &str {
        "rmsd"
    }

    fn compute(&mut self, frame: &Frame) -> f64 {
        let reference = self.reference.get_or_insert_with(|| frame.clone());
        assert_eq!(
            reference.num_atoms(),
            frame.num_atoms(),
            "reference and frame atom counts differ"
        );
        if frame.num_atoms() == 0 {
            return 0.0;
        }
        let box_len = frame.box_len as f64;
        let sum: f64 = reference
            .positions
            .par_iter()
            .zip(&frame.positions)
            .map(|(&a, &b)| min_image_d2(a, b, box_len))
            .sum();
        (sum / frame.num_atoms() as f64).sqrt()
    }
}

/// Radius of gyration: RMS distance of atoms from their centroid.
#[derive(Debug, Clone, Copy, Default)]
pub struct RadiusOfGyration;

impl FrameKernel for RadiusOfGyration {
    fn name(&self) -> &str {
        "radius-of-gyration"
    }

    fn compute(&mut self, frame: &Frame) -> f64 {
        let n = frame.num_atoms();
        if n == 0 {
            return 0.0;
        }
        let mut com = [0.0f64; 3];
        for p in &frame.positions {
            for d in 0..3 {
                com[d] += p[d] as f64;
            }
        }
        for c in &mut com {
            *c /= n as f64;
        }
        let sum: f64 = frame
            .positions
            .par_iter()
            .map(|p| {
                let mut d2 = 0.0;
                for d in 0..3 {
                    let x = p[d] as f64 - com[d];
                    d2 += x * x;
                }
                d2
            })
            .sum();
        (sum / n as f64).sqrt()
    }
}

/// Number of atom pairs within a cutoff between two groups (a contact
/// count, the discrete cousin of the paper's smooth contact matrix).
#[derive(Debug, Clone)]
pub struct ContactCount {
    /// Group A atom indexes.
    pub group_a: Vec<u32>,
    /// Group B atom indexes.
    pub group_b: Vec<u32>,
    /// Contact cutoff distance.
    pub cutoff: f64,
}

impl ContactCount {
    /// Interleaved groups over the first `2k` atoms.
    pub fn interleaved(num_atoms: usize, k: usize, cutoff: f64) -> Self {
        let groups = super::bipartite::BipartiteGroups::interleaved(num_atoms, k);
        ContactCount { group_a: groups.group_a, group_b: groups.group_b, cutoff }
    }
}

impl FrameKernel for ContactCount {
    fn name(&self) -> &str {
        "contact-count"
    }

    fn compute(&mut self, frame: &Frame) -> f64 {
        let cutoff2 = self.cutoff * self.cutoff;
        let box_len = frame.box_len as f64;
        self.group_a
            .par_iter()
            .map(|&ia| {
                let pa = frame.positions[ia as usize];
                self.group_b
                    .iter()
                    .filter(|&&ib| {
                        min_image_d2(pa, frame.positions[ib as usize], box_len) < cutoff2
                    })
                    .count() as f64
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_frame(n: usize, spacing: f32) -> Frame {
        Frame {
            step: 0,
            time: 0.0,
            box_len: 1000.0,
            positions: (0..n).map(|i| [i as f32 * spacing, 0.0, 0.0]).collect(),
        }
    }

    #[test]
    fn rmsd_of_identical_frames_is_zero() {
        let f = line_frame(10, 1.0);
        let mut k = RmsdKernel::from_first_frame();
        assert_eq!(k.compute(&f), 0.0, "first frame is its own reference");
        assert_eq!(k.compute(&f), 0.0);
    }

    #[test]
    fn rmsd_of_uniform_shift_is_the_shift() {
        let f = line_frame(10, 1.0);
        let mut shifted = f.clone();
        for p in &mut shifted.positions {
            p[2] += 3.0;
        }
        let mut k = RmsdKernel::with_reference(f);
        assert!((k.compute(&shifted) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn rmsd_uses_minimum_image() {
        let mut f = line_frame(2, 1.0);
        f.box_len = 10.0;
        let mut moved = f.clone();
        moved.positions[0][0] += 9.0; // 1.0 away through the boundary
        let mut k = RmsdKernel::with_reference(f);
        let d = k.compute(&moved);
        assert!(d < 1.0 + 1e-6, "min-image RMSD must be small, got {d}");
    }

    #[test]
    fn gyration_of_a_point_is_zero_and_grows_with_spread() {
        let tight = line_frame(8, 0.0);
        let spread = line_frame(8, 2.0);
        let mut k = RadiusOfGyration;
        assert_eq!(k.compute(&tight), 0.0);
        assert!(k.compute(&spread) > 1.0);
    }

    #[test]
    fn contact_count_matches_manual() {
        // Atoms on a line, spacing 1; interleaved groups of 2:
        // A = {0, 2}, B = {1, 3}. Cutoff 1.5: pairs (0,1), (2,1), (2,3)
        // are within reach; (0,3) is not.
        let f = line_frame(4, 1.0);
        let mut k = ContactCount::interleaved(4, 2, 1.5);
        assert_eq!(k.compute(&f), 3.0);
    }

    #[test]
    fn contact_count_zero_when_far_apart() {
        let f = line_frame(6, 100.0);
        let mut k = ContactCount::interleaved(6, 3, 1.5);
        assert_eq!(k.compute(&f), 0.0);
    }

    #[test]
    fn empty_frames_are_safe() {
        let empty = Frame { step: 0, time: 0.0, box_len: 1.0, positions: vec![] };
        assert_eq!(RmsdKernel::from_first_frame().compute(&empty), 0.0);
        assert_eq!(RadiusOfGyration.compute(&empty), 0.0);
    }

    #[test]
    fn kernel_names() {
        assert_eq!(RmsdKernel::from_first_frame().name(), "rmsd");
        assert_eq!(RadiusOfGyration.name(), "radius-of-gyration");
        assert_eq!(ContactCount::interleaved(4, 2, 1.0).name(), "contact-count");
    }
}
