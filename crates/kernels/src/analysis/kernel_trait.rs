//! The pluggable analysis-kernel interface.
//!
//! The paper's runtime is explicitly kernel-agnostic: "the chunk also
//! defines a unique data type standard for the analysis kernels, though
//! each of them may perform different computations" (§2.2). Any
//! [`FrameKernel`] can be coupled to a simulation; the crate ships the
//! paper's eigenvalue analysis plus the standard MD collective variables.

use crate::md::frame::Frame;

/// A frame-in, scalar-out in situ analysis kernel.
pub trait FrameKernel: Send + Sync {
    /// Kernel name for reports.
    fn name(&self) -> &str;

    /// Computes the kernel's collective variable for one frame.
    fn compute(&mut self, frame: &Frame) -> f64;
}

impl FrameKernel for crate::analysis::analyzer::EigenAnalysis {
    fn name(&self) -> &str {
        "bipartite-eigenvalue"
    }

    fn compute(&mut self, frame: &Frame) -> f64 {
        self.analyze(frame).collective_variable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyzer::EigenAnalysis;

    #[test]
    fn eigen_analysis_implements_the_trait() {
        let frame = Frame {
            step: 0,
            time: 0.0,
            box_len: 20.0,
            positions: (0..16).map(|i| [i as f32 * 0.8, 0.0, 0.0]).collect(),
        };
        let mut kernel: Box<dyn FrameKernel> = Box::new(EigenAnalysis::interleaved(16, 4, 1.0));
        assert_eq!(kernel.name(), "bipartite-eigenvalue");
        assert!(kernel.compute(&frame) > 0.0);
    }
}
