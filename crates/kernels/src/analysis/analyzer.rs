//! The in situ analysis kernel: frame → collective variable.

use super::bipartite::{BipartiteGroups, BipartiteMatrix};
use super::power_iter::{largest_singular_value, PowerIterConfig, PowerIterResult};
use crate::md::frame::Frame;

/// The paper's analysis: builds the bipartite contact matrix of a frame
/// and extracts its largest eigenvalue as a collective variable capturing
/// molecular motion.
#[derive(Debug, Clone)]
pub struct EigenAnalysis {
    /// Atom grouping defining the bipartite split.
    pub groups: BipartiteGroups,
    /// Gaussian contact width.
    pub sigma: f64,
    /// Eigen-solver settings.
    pub solver: PowerIterConfig,
}

impl EigenAnalysis {
    /// An analysis over the first `2k` atoms split into interleaved
    /// groups — a reasonable default when no domain knowledge is supplied.
    pub fn interleaved(num_atoms: usize, k: usize, sigma: f64) -> Self {
        EigenAnalysis {
            groups: BipartiteGroups::interleaved(num_atoms, k),
            sigma,
            solver: PowerIterConfig::default(),
        }
    }

    /// Runs the kernel on one frame, returning the collective variable
    /// (largest singular value of the contact matrix).
    pub fn analyze(&self, frame: &Frame) -> AnalysisOutput {
        let matrix = BipartiteMatrix::from_frame(frame, &self.groups, self.sigma);
        let eig: PowerIterResult = largest_singular_value(&matrix, &self.solver);
        AnalysisOutput {
            step: frame.step,
            collective_variable: eig.sigma_max,
            iterations: eig.iterations,
            converged: eig.converged,
        }
    }
}

/// Output of one analysis step.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisOutput {
    /// MD step of the analyzed frame.
    pub step: u64,
    /// The collective variable value.
    pub collective_variable: f64,
    /// Solver iterations used.
    pub iterations: usize,
    /// Solver convergence flag.
    pub converged: bool,
}

/// Accumulates the collective-variable time series across in situ steps.
#[derive(Debug, Clone, Default)]
pub struct CvSeries {
    steps: Vec<u64>,
    values: Vec<f64>,
}

impl CvSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one output.
    pub fn push(&mut self, out: &AnalysisOutput) {
        self.steps.push(out.step);
        self.values.push(out.collective_variable);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The recorded values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The recorded step indexes.
    pub fn steps(&self) -> &[u64] {
        &self.steps
    }

    /// Mean of the collective variable (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(n: usize) -> Frame {
        Frame {
            step: 5,
            time: 0.1,
            box_len: 50.0,
            positions: (0..n).map(|i| [(i as f32) * 0.9, (i as f32 % 3.0), 0.0]).collect(),
        }
    }

    #[test]
    fn analysis_produces_positive_cv() {
        let f = frame(32);
        let a = EigenAnalysis::interleaved(f.num_atoms(), 8, 1.0);
        let out = a.analyze(&f);
        assert!(out.collective_variable > 0.0);
        assert!(out.converged);
        assert_eq!(out.step, 5);
    }

    #[test]
    fn cv_is_deterministic() {
        let f = frame(32);
        let a = EigenAnalysis::interleaved(f.num_atoms(), 8, 1.0);
        assert_eq!(a.analyze(&f), a.analyze(&f));
    }

    #[test]
    fn cv_sensitive_to_conformation() {
        let f1 = frame(32);
        let mut f2 = f1.clone();
        // Spread the atoms out: contacts weaken, CV falls.
        for p in &mut f2.positions {
            p[0] *= 4.0;
        }
        let a = EigenAnalysis::interleaved(32, 8, 1.0);
        let cv1 = a.analyze(&f1).collective_variable;
        let cv2 = a.analyze(&f2).collective_variable;
        assert!(cv1 > cv2, "compact {cv1} should exceed spread {cv2}");
    }

    #[test]
    fn series_accumulates() {
        let f = frame(16);
        let a = EigenAnalysis::interleaved(16, 4, 1.0);
        let mut series = CvSeries::new();
        assert!(series.is_empty());
        series.push(&a.analyze(&f));
        series.push(&a.analyze(&f));
        assert_eq!(series.len(), 2);
        assert_eq!(series.steps(), &[5, 5]);
        assert!(series.mean() > 0.0);
    }
}
