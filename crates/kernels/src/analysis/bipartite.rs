//! Bipartite contact matrices over trajectory frames.
//!
//! The paper's analysis kernel "computes the largest eigenvalue of
//! bipartite matrices as a collective variable of the frames" (citing
//! Johnston et al., *In situ data analytics and indexing of protein
//! trajectories*). Atoms are split into two groups; the matrix entry
//! `B[i][j]` is a smooth contact score between atom `i` of group A and
//! atom `j` of group B. The largest singular value of `B` (equivalently
//! the largest eigenvalue of the bipartite adjacency) tracks large-scale
//! conformational motion.

use rayon::prelude::*;

use crate::md::frame::Frame;

/// Which atoms belong to each side of the bipartite split.
#[derive(Debug, Clone)]
pub struct BipartiteGroups {
    /// Atom indices of group A (matrix rows).
    pub group_a: Vec<u32>,
    /// Atom indices of group B (matrix columns).
    pub group_b: Vec<u32>,
}

impl BipartiteGroups {
    /// Splits the first `2k` atoms into two interleaved groups of `k`.
    pub fn interleaved(num_atoms: usize, k: usize) -> Self {
        let k = k.min(num_atoms / 2);
        BipartiteGroups {
            group_a: (0..k as u32).map(|i| 2 * i).collect(),
            group_b: (0..k as u32).map(|i| 2 * i + 1).collect(),
        }
    }

    /// Validates the groups against a frame.
    pub fn validate(&self, frame: &Frame) -> bool {
        let n = frame.num_atoms() as u32;
        !self.group_a.is_empty()
            && !self.group_b.is_empty()
            && self.group_a.iter().all(|&i| i < n)
            && self.group_b.iter().all(|&i| i < n)
    }
}

/// A dense row-major bipartite contact matrix.
#[derive(Debug, Clone)]
pub struct BipartiteMatrix {
    /// Row count (= |group A|).
    pub rows: usize,
    /// Column count (= |group B|).
    pub cols: usize,
    /// Row-major contact scores.
    pub data: Vec<f64>,
}

impl BipartiteMatrix {
    /// Builds the contact matrix from a frame with Gaussian contact score
    /// `exp(-d² / (2σ²))` under minimum-image distances.
    pub fn from_frame(frame: &Frame, groups: &BipartiteGroups, sigma: f64) -> Self {
        assert!(groups.validate(frame), "groups reference atoms outside the frame");
        assert!(sigma > 0.0, "sigma must be positive");
        let rows = groups.group_a.len();
        let cols = groups.group_b.len();
        let inv_two_sigma2 = 1.0 / (2.0 * sigma * sigma);
        let box_len = frame.box_len as f64;
        let data: Vec<f64> = groups
            .group_a
            .par_iter()
            .flat_map_iter(|&ia| {
                let pa = frame.positions[ia as usize];
                groups.group_b.iter().map(move |&ib| {
                    let pb = frame.positions[ib as usize];
                    let mut d2 = 0.0f64;
                    for d in 0..3 {
                        let mut x = pa[d] as f64 - pb[d] as f64;
                        if box_len > 0.0 {
                            x -= box_len * (x / box_len).round();
                        }
                        d2 += x * x;
                    }
                    (-d2 * inv_two_sigma2).exp()
                })
            })
            .collect();
        BipartiteMatrix { rows, cols, data }
    }

    /// `y = B x` (x has `cols` entries, y has `rows`).
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(y.len(), self.rows);
        y.par_iter_mut().enumerate().for_each(|(r, out)| {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            *out = row.iter().zip(x).map(|(a, b)| a * b).sum();
        });
    }

    /// `y = Bᵀ x` (x has `rows` entries, y has `cols`).
    pub fn matvec_t(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.rows);
        assert_eq!(y.len(), self.cols);
        y.par_iter_mut().enumerate().for_each(|(c, out)| {
            *out = (0..self.rows).map(|r| self.data[r * self.cols + c] * x[r]).sum();
        });
    }

    /// Matrix entry accessor (row-major).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> Frame {
        Frame {
            step: 0,
            time: 0.0,
            box_len: 100.0,
            positions: vec![[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [5.0, 5.0, 5.0]],
        }
    }

    #[test]
    fn interleaved_groups() {
        let g = BipartiteGroups::interleaved(10, 3);
        assert_eq!(g.group_a, vec![0, 2, 4]);
        assert_eq!(g.group_b, vec![1, 3, 5]);
    }

    #[test]
    fn contact_scores_decay_with_distance() {
        let f = frame();
        let g = BipartiteGroups { group_a: vec![0], group_b: vec![1, 3] };
        let m = BipartiteMatrix::from_frame(&f, &g, 1.0);
        assert_eq!((m.rows, m.cols), (1, 2));
        // Atom 1 is at distance 1, atom 3 much farther.
        assert!(m.get(0, 0) > m.get(0, 1));
        assert!((m.get(0, 0) - (-0.5f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn identical_positions_score_one() {
        let mut f = frame();
        f.positions[1] = f.positions[0];
        let g = BipartiteGroups { group_a: vec![0], group_b: vec![1] };
        let m = BipartiteMatrix::from_frame(&f, &g, 0.7);
        assert!((m.get(0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn periodic_distance_used() {
        let f = Frame {
            step: 0,
            time: 0.0,
            box_len: 10.0,
            positions: vec![[0.5, 0.0, 0.0], [9.5, 0.0, 0.0]],
        };
        let g = BipartiteGroups { group_a: vec![0], group_b: vec![1] };
        let m = BipartiteMatrix::from_frame(&f, &g, 1.0);
        // Minimum-image distance is 1.0, not 9.0.
        assert!((m.get(0, 0) - (-0.5f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn matvec_matches_manual() {
        let m = BipartiteMatrix { rows: 2, cols: 3, data: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0] };
        let x = [1.0, 0.5, 2.0];
        let mut y = [0.0; 2];
        m.matvec(&x, &mut y);
        assert_eq!(y, [8.0, 18.5]);
        let xt = [1.0, 2.0];
        let mut yt = [0.0; 3];
        m.matvec_t(&xt, &mut yt);
        assert_eq!(yt, [9.0, 12.0, 15.0]);
    }

    #[test]
    #[should_panic(expected = "groups reference atoms outside the frame")]
    fn invalid_groups_panic() {
        let f = frame();
        let g = BipartiteGroups { group_a: vec![99], group_b: vec![1] };
        BipartiteMatrix::from_frame(&f, &g, 1.0);
    }
}
