//! The in situ analysis kernel family: bipartite contact matrices over
//! frames and their largest eigenvalue as a collective variable (the
//! algorithm class of Johnston et al. cited by the paper).

pub mod analyzer;
pub mod bipartite;
pub mod descriptors;
pub mod kernel_trait;
pub mod msd;
pub mod power_iter;

pub use analyzer::{AnalysisOutput, CvSeries, EigenAnalysis};
pub use bipartite::{BipartiteGroups, BipartiteMatrix};
pub use descriptors::{ContactCount, RadiusOfGyration, RmsdKernel};
pub use kernel_trait::FrameKernel;
pub use msd::MsdKernel;
pub use power_iter::{largest_singular_value, PowerIterConfig, PowerIterResult};
