//! Power iteration for the largest singular value of a bipartite matrix.
//!
//! Iterates `x ← BᵀB x / ‖·‖`; the largest eigenvalue of `BᵀB` is the
//! square of the largest singular value of `B`, which equals the largest
//! eigenvalue (in magnitude) of the bipartite adjacency `[0 B; Bᵀ 0]`.

use super::bipartite::BipartiteMatrix;

/// Convergence settings for the power iteration.
#[derive(Debug, Clone, Copy)]
pub struct PowerIterConfig {
    /// Maximum iterations.
    pub max_iters: usize,
    /// Relative change in the eigenvalue below which we stop.
    pub tolerance: f64,
}

impl Default for PowerIterConfig {
    fn default() -> Self {
        PowerIterConfig { max_iters: 200, tolerance: 1e-9 }
    }
}

/// Result of a power iteration.
#[derive(Debug, Clone)]
pub struct PowerIterResult {
    /// Largest singular value of the matrix.
    pub sigma_max: f64,
    /// Iterations used.
    pub iterations: usize,
    /// Whether the tolerance was met before `max_iters`.
    pub converged: bool,
}

/// Computes the largest singular value of `m` by power iteration on
/// `BᵀB`, starting from a deterministic positive vector.
pub fn largest_singular_value(m: &BipartiteMatrix, config: &PowerIterConfig) -> PowerIterResult {
    assert!(m.rows > 0 && m.cols > 0, "matrix must be non-empty");
    let mut x = vec![1.0f64; m.cols];
    let mut bx = vec![0.0f64; m.rows];
    let mut btbx = vec![0.0f64; m.cols];
    let mut lambda_prev = 0.0f64;
    let mut iterations = 0;
    let mut converged = false;
    for it in 0..config.max_iters {
        iterations = it + 1;
        m.matvec(&x, &mut bx);
        m.matvec_t(&bx, &mut btbx);
        // Rayleigh quotient: λ = xᵀ(BᵀB)x / xᵀx.
        let num: f64 = x.iter().zip(&btbx).map(|(a, b)| a * b).sum();
        let den: f64 = x.iter().map(|a| a * a).sum();
        let lambda = if den > 0.0 { num / den } else { 0.0 };
        let norm: f64 = btbx.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm <= f64::MIN_POSITIVE {
            // Zero matrix: singular value 0.
            return PowerIterResult { sigma_max: 0.0, iterations, converged: true };
        }
        for (xi, bi) in x.iter_mut().zip(&btbx) {
            *xi = bi / norm;
        }
        if lambda > 0.0 && ((lambda - lambda_prev).abs() / lambda) < config.tolerance {
            lambda_prev = lambda;
            converged = true;
            break;
        }
        lambda_prev = lambda;
    }
    PowerIterResult { sigma_max: lambda_prev.max(0.0).sqrt(), iterations, converged }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(rows: usize, cols: usize, data: Vec<f64>) -> BipartiteMatrix {
        BipartiteMatrix { rows, cols, data }
    }

    #[test]
    fn diagonal_matrix_sigma_is_max_entry() {
        let m = matrix(3, 3, vec![3.0, 0.0, 0.0, 0.0, 5.0, 0.0, 0.0, 0.0, 2.0]);
        let r = largest_singular_value(&m, &PowerIterConfig::default());
        assert!(r.converged);
        assert!((r.sigma_max - 5.0).abs() < 1e-6, "sigma {}", r.sigma_max);
    }

    #[test]
    fn rank_one_matrix() {
        // B = u vᵀ with ‖u‖ = 5, ‖v‖ = √2 → σ = 5√2... use u=[3,4], v=[1,1].
        let m = matrix(2, 2, vec![3.0, 3.0, 4.0, 4.0]);
        let r = largest_singular_value(&m, &PowerIterConfig::default());
        let expected = 5.0 * 2.0f64.sqrt();
        assert!((r.sigma_max - expected).abs() < 1e-6);
    }

    #[test]
    fn zero_matrix_is_zero() {
        let m = matrix(2, 2, vec![0.0; 4]);
        let r = largest_singular_value(&m, &PowerIterConfig::default());
        assert_eq!(r.sigma_max, 0.0);
        assert!(r.converged);
    }

    #[test]
    fn non_square_matrix() {
        // B = [[1, 0, 0], [0, 2, 0]] → σ = 2.
        let m = matrix(2, 3, vec![1.0, 0.0, 0.0, 0.0, 2.0, 0.0]);
        let r = largest_singular_value(&m, &PowerIterConfig::default());
        assert!((r.sigma_max - 2.0).abs() < 1e-6);
    }

    #[test]
    fn respects_iteration_cap() {
        let m = matrix(2, 2, vec![1.0, 0.99, 0.99, 1.0]);
        let r = largest_singular_value(&m, &PowerIterConfig { max_iters: 1, tolerance: 0.0 });
        assert_eq!(r.iterations, 1);
        assert!(!r.converged);
    }
}
