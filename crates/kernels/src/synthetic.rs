//! Synthetic kernels with tunable compute/memory intensity.
//!
//! Used for failure injection, runtime stress tests, and as stand-ins when
//! an experiment wants a component with a precisely known profile.

use std::hint::black_box;

/// A kernel that alternates arithmetic with strided buffer walks, letting
/// tests dial compute-bound vs memory-bound behaviour.
#[derive(Debug, Clone)]
pub struct SyntheticKernel {
    /// Floating-point multiply-add iterations per step.
    pub flops_per_step: u64,
    /// Size of the buffer walked each step (bytes).
    pub buffer_bytes: usize,
    /// Passes over the buffer per step.
    pub passes: u32,
    buffer: Vec<u64>,
}

impl SyntheticKernel {
    /// Builds the kernel and touches its buffer (first-touch paging).
    pub fn new(flops_per_step: u64, buffer_bytes: usize, passes: u32) -> Self {
        let words = buffer_bytes / 8;
        let buffer: Vec<u64> = (0..words as u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        SyntheticKernel { flops_per_step, buffer_bytes, passes, buffer }
    }

    /// Runs one step; returns a value derived from all the work so the
    /// optimizer cannot elide it.
    pub fn step(&mut self) -> f64 {
        // Compute phase: dependent FMA chain.
        let mut acc = 1.000000001f64;
        for _ in 0..self.flops_per_step {
            acc = acc.mul_add(1.000000001, 1e-12);
        }
        // Memory phase: strided walk defeating prefetch-friendly patterns.
        let mut sum = 0u64;
        let len = self.buffer.len();
        if len > 0 {
            const STRIDE: usize = 17; // coprime with typical power-of-two lengths
            for _ in 0..self.passes {
                let mut idx = 0usize;
                for _ in 0..len {
                    sum = sum.wrapping_add(self.buffer[idx]);
                    self.buffer[idx] = self.buffer[idx].rotate_left(1);
                    idx = (idx + STRIDE) % len;
                }
            }
        }
        black_box(acc + sum as f64 * 1e-20)
    }

    /// A compute-dominated preset.
    pub fn compute_bound(flops: u64) -> Self {
        SyntheticKernel::new(flops, 4096, 1)
    }

    /// A memory-dominated preset.
    pub fn memory_bound(buffer_bytes: usize, passes: u32) -> Self {
        SyntheticKernel::new(1_000, buffer_bytes, passes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_produces_finite_value() {
        let mut k = SyntheticKernel::new(1_000, 1 << 16, 2);
        let v = k.step();
        assert!(v.is_finite());
    }

    #[test]
    fn buffer_mutates_between_steps() {
        let mut k = SyntheticKernel::memory_bound(1 << 12, 1);
        let before = k.buffer.clone();
        k.step();
        assert_ne!(before, k.buffer);
    }

    #[test]
    fn zero_buffer_is_safe() {
        let mut k = SyntheticKernel::new(100, 0, 3);
        assert!(k.step().is_finite());
    }

    #[test]
    fn presets_have_expected_shape() {
        let c = SyntheticKernel::compute_bound(1_000_000);
        assert!(c.flops_per_step >= 1_000_000);
        let m = SyntheticKernel::memory_bound(1 << 20, 4);
        assert_eq!(m.buffer_bytes, 1 << 20);
        assert_eq!(m.passes, 4);
    }
}
