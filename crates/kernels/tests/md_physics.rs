//! Physics validation of the MD engine over longer horizons: the
//! conservation laws and statistical-mechanics sanity checks a real
//! simulation engine must pass.

use kernels::analysis::{FrameKernel, MsdKernel};
use kernels::md::{
    compute_forces, compute_forces_full, pressure, velocity_verlet_step, LjParams, MdConfig,
    MdSimulation, MolecularSystem,
};

#[test]
fn nve_energy_drift_stays_bounded_over_long_run() {
    let mut s = MolecularSystem::lattice(5, 0.8, 0.75, 99);
    let params = LjParams::default();
    let dt = 0.002;
    let e0 = compute_forces(&mut s, &params) + s.kinetic_energy();
    let mut worst = 0.0f64;
    for _ in 0..1000 {
        let pot = velocity_verlet_step(&mut s, &params, dt);
        let drift = ((pot + s.kinetic_energy() - e0) / e0).abs();
        worst = worst.max(drift);
    }
    assert!(worst < 1e-2, "NVE drift {worst} over 1000 steps");
}

#[test]
fn momentum_is_conserved_without_thermostat() {
    let mut s = MolecularSystem::lattice(4, 0.8, 1.0, 7);
    let params = LjParams::default();
    compute_forces(&mut s, &params);
    for _ in 0..300 {
        velocity_verlet_step(&mut s, &params, 0.002);
    }
    let mut p = [0.0f64; 3];
    for v in &s.velocities {
        for (acc, vd) in p.iter_mut().zip(v) {
            *acc += vd;
        }
    }
    for (d, pd) in p.iter().enumerate() {
        assert!(pd.abs() < 1e-8, "momentum component {d} drifted to {pd}");
    }
}

#[test]
fn thermostatted_fluid_diffuses() {
    // A liquid-state LJ system must show growing MSD (self-diffusion);
    // a harmonic solid would plateau.
    let mut sim = MdSimulation::new(&MdConfig {
        atoms_per_side: 5,
        density: 0.7,
        temperature: 1.3,
        stride: 40,
        ..Default::default()
    });
    let mut msd = MsdKernel::new();
    let mut series = Vec::new();
    for _ in 0..8 {
        series.push(msd.compute(&sim.advance_stride()));
    }
    assert_eq!(series[0], 0.0);
    let early = series[2];
    let late = *series.last().unwrap();
    assert!(late > early && late > 0.05, "liquid must diffuse: early {early}, late {late}");
}

#[test]
fn pressure_tracks_density() {
    // Denser LJ fluid at the same temperature → higher pressure.
    let params = LjParams::default();
    let mut p_by_density = Vec::new();
    for density in [0.5, 0.8, 1.0] {
        let mut s = MolecularSystem::lattice(5, density, 1.5, 11);
        // Short equilibration.
        compute_forces(&mut s, &params);
        for _ in 0..100 {
            velocity_verlet_step(&mut s, &params, 0.002);
        }
        let result = compute_forces_full(&mut s, &params);
        p_by_density.push(pressure(&s, result.virial));
    }
    assert!(
        p_by_density[2] > p_by_density[1] && p_by_density[1] > p_by_density[0],
        "pressure must rise with density: {p_by_density:?}"
    );
}

#[test]
fn hot_system_has_higher_kinetic_energy() {
    let cold = MolecularSystem::lattice(4, 0.8, 0.5, 3);
    let hot = MolecularSystem::lattice(4, 0.8, 2.0, 3);
    assert!(hot.kinetic_energy() > 3.0 * cold.kinetic_energy());
}

#[test]
fn trajectories_decorrelate_across_seeds() {
    let run = |seed: u64| {
        let mut sim = MdSimulation::new(&MdConfig {
            atoms_per_side: 4,
            stride: 30,
            seed,
            ..Default::default()
        });
        sim.advance_stride().positions
    };
    let a = run(1);
    let b = run(2);
    let mean_sep: f64 = a
        .iter()
        .zip(&b)
        .map(|(pa, pb)| (0..3).map(|d| (pa[d] as f64 - pb[d] as f64).powi(2)).sum::<f64>().sqrt())
        .sum::<f64>()
        / a.len() as f64;
    assert!(mean_sep > 0.05, "different seeds must diverge, got {mean_sep}");
}

#[test]
fn frames_respect_the_box() {
    let mut sim = MdSimulation::new(&MdConfig {
        atoms_per_side: 4,
        stride: 50,
        temperature: 2.0,
        ..Default::default()
    });
    for _ in 0..4 {
        let f = sim.advance_stride();
        for p in &f.positions {
            for d in 0..3 {
                assert!(
                    p[d] >= 0.0 && p[d] <= f.box_len,
                    "atom escaped the box: {p:?} (L = {})",
                    f.box_len
                );
            }
        }
    }
}
