//! Every in situ analysis kernel over one real MD trajectory: the
//! paper's eigenvalue collective variable next to RMSD, radius of
//! gyration, contact count, and mean-squared displacement — all behind
//! the same `FrameKernel` interface the runtime couples to simulations.
//!
//! ```text
//! cargo run --release --example kernel_zoo
//! ```

use insitu_ensembles::kernels::analysis::{
    ContactCount, EigenAnalysis, FrameKernel, MsdKernel, RadiusOfGyration, RmsdKernel,
};
use insitu_ensembles::prelude::*;

fn main() {
    println!("in situ kernel zoo over one LJ-MD trajectory");
    println!("=============================================\n");

    let mut sim =
        MdSimulation::new(&MdConfig { atoms_per_side: 6, stride: 25, ..Default::default() });
    let atoms = sim.num_atoms();
    let mut kernels: Vec<Box<dyn FrameKernel>> = vec![
        Box::new(EigenAnalysis::interleaved(atoms, 64, 1.2)),
        Box::new(RmsdKernel::from_first_frame()),
        Box::new(RadiusOfGyration),
        Box::new(ContactCount::interleaved(atoms, 64, 1.5)),
        Box::new(MsdKernel::new()),
    ];

    print!("{:>5}", "frame");
    for k in &kernels {
        print!("  {:>24}", k.name());
    }
    println!();

    for step in 0..8 {
        let frame = sim.advance_stride();
        print!("{step:>5}");
        for k in &mut kernels {
            print!("  {:>24.4}", k.compute(&frame));
        }
        println!();
    }

    println!(
        "\nall kernels consume the same Frame chunks the DTL stages — the runtime couples \
         any of them to a simulation (paper §2.2's kernel-agnostic chunk contract)."
    );
}
