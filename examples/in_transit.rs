//! In situ vs in-transit coupling with real kernels: the synchronous
//! protocol never loses a frame but stalls the producer; the
//! asynchronous queue frees the simulation at the cost of *lost frames*
//! (Taufer et al., the paper's reference [26]).
//!
//! ```text
//! cargo run --release --example in_transit
//! ```

use insitu_ensembles::model::StageKind;
use insitu_ensembles::prelude::*;
use insitu_ensembles::runtime::run_threaded_in_transit;
use std::time::Duration;

fn main() {
    println!("synchronous (in situ) vs asynchronous (in-transit) coupling");
    println!("============================================================\n");

    // A deliberately over-matched analysis: big bipartite groups over a
    // small, fast simulation, so the consumer cannot keep up.
    let config = ThreadRunConfig {
        spec: ConfigId::Cc.build(),
        md: MdConfig { atoms_per_side: 6, stride: 2, ..Default::default() },
        analysis_group_size: 108,
        analysis_sigma: 1.2,
        n_steps: 12,
        staging_capacity: 1,
        timeout: Duration::from_secs(120),
        kernel: None,
        fault_plan: None,
        retry: None,
        restart: None,
    };

    // --- Synchronous: the paper's protocol. ---
    let sync = run_threaded(&config).expect("synchronous run");
    let sim = ComponentRef::simulation(0);
    let ana = ComponentRef::analysis(0, 1);
    let sync_span = sync.trace.component_span(sim).map(|(s, e)| e - s).unwrap_or_default();
    let sync_idle = sync.trace.total_in_stage(sim, StageKind::SimIdle);
    println!(
        "synchronous  : {} frames produced, {} analyzed, 0 lost",
        12,
        sync.cv_series[&ana].len()
    );
    println!(
        "               simulation span {:.2}s (idle {:.2}s waiting on the analysis)",
        sync_span, sync_idle
    );

    // --- Asynchronous: same workload, bounded queue, free-running sim. ---
    let in_transit = run_threaded_in_transit(&config).expect("in-transit run");
    let async_span = in_transit.trace.component_span(sim).map(|(s, e)| e - s).unwrap_or_default();
    let consumed = in_transit.cv_series[&ana].len();
    println!(
        "asynchronous : {} frames produced, {} analyzed, {} lost",
        in_transit.produced_frames[0], consumed, in_transit.lost_frames[0]
    );
    println!("               simulation span {:.2}s (never idles)", async_span);

    println!(
        "\nthe simulation finishes {:.1}x faster in-transit; the analysis sees only the \
         frames that survived the queue:",
        sync_span / async_span.max(1e-9)
    );
    for (step, cv) in &in_transit.cv_series[&ana] {
        println!("  frame {step:>2}: CV = {cv:.4}");
    }
}
