//! A real in situ ensemble member: an actual Lennard-Jones MD engine
//! coupled with the bipartite-eigenvalue analysis through the in-memory
//! DTL, on OS threads, with the paper's synchronous no-overwrite
//! protocol. Scaled so a laptop finishes in seconds.
//!
//! ```text
//! cargo run --release --example threaded_member
//! ```

use insitu_ensembles::model::StageKind;
use insitu_ensembles::prelude::*;
use std::time::Duration;

fn main() {
    println!("threaded ensemble member: real MD + real eigen analysis");
    println!("========================================================\n");

    // One member, simulation and analysis co-located (C_c): 8^3 = 512
    // LJ atoms, a frame staged every 25 MD steps, 8 in situ steps.
    let config = ThreadRunConfig {
        spec: ConfigId::Cc.build(),
        md: MdConfig { atoms_per_side: 8, stride: 25, ..Default::default() },
        analysis_group_size: 128,
        analysis_sigma: 1.2,
        n_steps: 8,
        staging_capacity: 1,
        timeout: Duration::from_secs(60),
        kernel: None,
        fault_plan: None,
        retry: None,
        restart: None,
    };
    let exec = run_threaded(&config).expect("threaded run failed");

    let sim = ComponentRef::simulation(0);
    let ana = ComponentRef::analysis(0, 1);
    println!(
        "staging: {} puts, {} gets, {} bytes staged",
        exec.staging_stats.puts, exec.staging_stats.gets, exec.staging_stats.bytes_staged
    );

    let s = exec.trace.stage_series(sim, StageKind::Simulate);
    let w = exec.trace.stage_series(sim, StageKind::Write);
    let r = exec.trace.stage_series(ana, StageKind::Read);
    let a = exec.trace.stage_series(ana, StageKind::Analyze);
    println!("\nper-step stage durations (wall-clock):");
    println!("step    S (ms)    W (ms)    R (ms)    A (ms)");
    for i in 0..s.len() {
        println!(
            "{:>4} {:>9.2} {:>9.3} {:>9.3} {:>9.2}",
            i,
            s[i] * 1e3,
            w[i] * 1e3,
            r[i] * 1e3,
            a[i] * 1e3
        );
    }

    // Reduce to the paper's steady-state model exactly as for simulated
    // runs.
    let samples = exec.trace.member_samples(0, 1);
    let times =
        insitu_ensembles::model::extract_steady_state(&samples, WarmupPolicy::FixedSteps(2))
            .expect("steady state");
    println!(
        "\nsteady state: S*+W* = {:.2} ms, R*+A* = {:.2} ms",
        times.sim_busy() * 1e3,
        times.analyses[0].busy() * 1e3
    );
    println!(
        "sigma* = {:.2} ms, efficiency E = {:.4}",
        sigma_star(&times) * 1e3,
        efficiency(&times)
    );
    match insitu_ensembles::model::coupling_scenario(&times, 0) {
        CouplingScenario::IdleAnalyzer => println!("coupling: idle-analyzer (analysis waits)"),
        CouplingScenario::IdleSimulation => {
            println!("coupling: idle-simulation (simulation waits)")
        }
        CouplingScenario::Balanced => println!("coupling: balanced"),
    }

    let cvs = &exec.cv_series[&ana];
    println!("\ncollective-variable series (largest eigenvalue per frame):");
    for (i, cv) in cvs.iter().enumerate() {
        println!("  frame {i}: {cv:.4}");
    }
}
