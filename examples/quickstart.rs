//! Quickstart: run one of the paper's configurations on the simulated
//! Cori-like platform and read off the paper's quantities.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use insitu_ensembles::prelude::*;

fn main() {
    println!("insitu-ensembles quickstart");
    println!("===========================\n");

    // The paper's best placement, C1.5: two ensemble members, each a
    // 16-core MD simulation co-located with its 8-core analysis on its
    // own node. Full paper scale: 37 in situ steps (stride 800 over
    // 30 000 MD steps).
    let report = EnsembleRunner::paper_config(ConfigId::C1_5)
        .steps(37)
        .jitter(0.01)
        .run()
        .expect("simulated run failed");

    println!("{}", report.to_table());

    // The model quantities of paper §3–§4, per member:
    let spec = ConfigId::C1_5.build();
    for (member_report, member_spec) in report.members.iter().zip(&spec.members) {
        let t = &member_report.stage_times;
        println!("member {}:", member_report.member + 1);
        println!("  S* + W*      = {:.3} s", t.sim_busy());
        println!("  R* + A*      = {:.3} s", t.analyses[0].busy());
        println!("  sigma*       = {:.3} s   (Eq. 1)", sigma_star(t));
        println!(
            "  makespan     = {:.1} s   (Eq. 2 model: {:.1} s)",
            member_report.makespan, member_report.makespan_model
        );
        println!("  efficiency E = {:.4}    (Eq. 3)", efficiency(t));
        println!("  CP           = {:.3}    (Eq. 6)", placement_indicator(member_spec));
        let inputs = MemberInputs::from_specs(member_spec, &spec, member_report.efficiency);
        println!("  P^U          = {:.4e}  (Eq. 5)", indicator(&inputs, &IndicatorPath::u()));
        println!("  P^U,A        = {:.4e}  (Eq. 7)", indicator(&inputs, &IndicatorPath::ua()));
        println!("  P^U,A,P      = {:.4e}  (Eq. 8)", indicator(&inputs, &IndicatorPath::uap()));
    }

    // The ensemble-level objective of §5.1 (Eq. 9).
    let values: Vec<f64> = report
        .members
        .iter()
        .zip(&spec.members)
        .map(|(mr, ms)| {
            indicator(&MemberInputs::from_specs(ms, &spec, mr.efficiency), &IndicatorPath::uap())
        })
        .collect();
    println!("\nF(P^U,A,P) = {:.4e}  (Eq. 9: mean - std over members)", objective(&values));
}
