//! Closing the measurement loop: run real kernels, *fit* architectural
//! workloads to the measured stage times, and drive the simulated
//! platform with the fitted profiles — measure → calibrate → simulate.
//!
//! ```text
//! cargo run --release --example calibrate
//! ```

use insitu_ensembles::model::{extract_steady_state, ComponentRef};
use insitu_ensembles::prelude::*;
use insitu_ensembles::runtime::{calibrate_component, SimRunConfig};
use std::time::Duration;

fn main() {
    println!("measure -> calibrate -> simulate");
    println!("================================\n");

    // 1. Measure: a real member on this machine.
    let stride: u64 = 10;
    let threaded = ThreadRunConfig {
        spec: ConfigId::Cf.build(),
        md: MdConfig { atoms_per_side: 6, stride, ..Default::default() },
        analysis_group_size: 64,
        analysis_sigma: 1.2,
        n_steps: 8,
        staging_capacity: 1,
        timeout: Duration::from_secs(120),
        kernel: None,
        fault_plan: None,
        retry: None,
        restart: None,
    };
    let exec = run_threaded(&threaded).expect("threaded run");
    let node = insitu_ensembles::platform::cori::cori_node();

    // 2. Calibrate both components against the paper's profile shapes.
    let sim_fit = calibrate_component(
        &exec.trace,
        ComponentRef::simulation(0),
        1,
        16,
        &node,
        &insitu_ensembles::kernels::profile::simulation_workload(stride),
        WarmupPolicy::FixedSteps(2),
    )
    .expect("simulation fit");
    let ana_fit = calibrate_component(
        &exec.trace,
        ComponentRef::analysis(0, 1),
        1,
        8,
        &node,
        &insitu_ensembles::kernels::profile::analysis_workload(),
        WarmupPolicy::FixedSteps(2),
    )
    .expect("analysis fit");
    println!(
        "measured S* = {:.2} ms -> fitted {:.3e} instructions/step",
        sim_fit.measured_seconds * 1e3,
        sim_fit.workload.instructions_per_step
    );
    println!(
        "measured A* = {:.2} ms -> fitted {:.3e} instructions/step",
        ana_fit.measured_seconds * 1e3,
        ana_fit.workload.instructions_per_step
    );

    // 3. Simulate this machine's member on the modeled platform and
    //    compare the predicted steady state with the measurement.
    let mut run = SimRunConfig::paper(ConfigId::Cf.build());
    run.n_steps = 8;
    run.jitter = 0.0;
    run.workloads.set_override(ComponentRef::simulation(0), sim_fit.workload.clone());
    run.workloads.set_override(ComponentRef::analysis(0, 1), ana_fit.workload.clone());
    let sim_exec = run_simulated(&run).expect("simulated run");
    let times =
        extract_steady_state(&sim_exec.trace.member_samples(0, 1), WarmupPolicy::FixedSteps(2))
            .expect("steady state");
    println!("\nsimulated platform with fitted profiles:");
    println!("  S* = {:.2} ms (measured {:.2} ms)", times.s * 1e3, sim_fit.measured_seconds * 1e3);
    println!(
        "  A* = {:.2} ms (measured {:.2} ms)",
        times.analyses[0].a * 1e3,
        ana_fit.measured_seconds * 1e3
    );
    println!("  sigma* = {:.2} ms, E = {:.4}", sigma_star(&times) * 1e3, efficiency(&times));

    // 4. The fitted profiles can now drive any what-if: e.g. how would
    //    THIS member behave if both components shared one node?
    let mut coloc = run.clone();
    coloc.spec = ConfigId::Cc.build();
    let what_if = insitu_ensembles::runtime::predict(&coloc).expect("prediction");
    println!(
        "\nwhat-if (co-located on one node): sigma* = {:.2} ms, E = {:.4}",
        what_if.members[0].sigma_star * 1e3,
        what_if.members[0].efficiency
    );
}
