//! The paper's future work in action: use the performance indicators to
//! schedule an ensemble under resource constraints. The advisor sweeps
//! analysis core counts (§3.4), enumerates placements, evaluates each on
//! the simulated platform, and ranks by F(P^{U,A,P}).
//!
//! ```text
//! cargo run --release --example placement_advisor
//! ```

use insitu_ensembles::prelude::*;
use insitu_ensembles::scheduling;

fn main() {
    println!("indicator-guided placement advisor");
    println!("==================================\n");

    // Scenario: 2 ensemble members, each one 16-core simulation coupled
    // with one analysis; at most 3 Cori nodes (32 cores each).
    let budget = NodeBudget { max_nodes: 3, cores_per_node: 32 };

    // Step 1 — size the analyses with the paper's §3.4 heuristic.
    let sweep = core_sweep(&CoreSweepConfig::paper()).expect("core sweep failed");
    println!("core sweep (Figure 7): recommended analysis cores = {}", sweep.recommended_cores);
    for p in &sweep.points {
        println!(
            "  {:>2} cores: sigma* = {:>6.2}s, E = {:.3}, Eq.4 {}",
            p.analysis_cores,
            p.sigma_star,
            p.efficiency,
            if p.satisfies_eq4 { "satisfied" } else { "violated " }
        );
    }

    // Step 2 — exhaustively rank every canonical placement.
    let config =
        SearchConfig::new(EnsembleShape::uniform(2, 16, 1, sweep.recommended_cores), budget);
    let ranked = exhaustive_search(&config).expect("search failed");
    println!("\n{} canonical feasible placements evaluated; top 5:", ranked.len());
    for (rank, placed) in ranked.iter().take(5).enumerate() {
        println!(
            "  #{} assignment {:?}: F = {:.3e}, {} nodes, ensemble makespan {:.1}s",
            rank + 1,
            placed.assignment,
            placed.objective,
            placed.nodes_used,
            placed.ensemble_makespan
        );
    }

    // Step 3 — the one-call advisor.
    let rec = scheduling::recommend_placement(2, 16, 1, sweep.recommended_cores, budget, false)
        .expect("advisor failed");
    println!("\nadvisor: {}", rec.rationale);
    for (i, member) in rec.spec.members.iter().enumerate() {
        println!(
            "  member {}: simulation on {:?}, analyses on {:?}",
            i + 1,
            member.simulation.nodes,
            member.analyses.iter().map(|a| a.nodes.clone()).collect::<Vec<_>>()
        );
    }
}
