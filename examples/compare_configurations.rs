//! Mini-reproduction: run all 15 paper configurations (Tables 2 and 4)
//! and print the co-location story — makespans, efficiency, and the
//! final indicator — in one table.
//!
//! ```text
//! cargo run --release --example compare_configurations
//! ```

use insitu_ensembles::prelude::*;

fn main() {
    println!("all paper configurations, simulated at paper scale");
    println!("===================================================\n");
    println!(
        "{:<6} {:>2} {:>2} {:>12} {:>9} {:>8} {:>13}",
        "config", "N", "M", "makespan(s)", "mean E", "mean CP", "F(P^UAP)"
    );
    println!("{}", "-".repeat(60));

    let mut best: Option<(String, f64)> = None;
    for id in ConfigId::all() {
        let spec = id.build();
        let report =
            EnsembleRunner::paper_config(id).steps(37).jitter(0.0).run().expect("run failed");
        let mean_e: f64 =
            report.members.iter().map(|m| m.efficiency).sum::<f64>() / report.n as f64;
        let mean_cp: f64 = report.members.iter().map(|m| m.cp).sum::<f64>() / report.n as f64;
        let values: Vec<f64> = report
            .members
            .iter()
            .zip(&spec.members)
            .map(|(mr, ms)| {
                indicator(
                    &MemberInputs::from_specs(ms, &spec, mr.efficiency),
                    &IndicatorPath::uap(),
                )
            })
            .collect();
        let f = objective(&values);
        println!(
            "{:<6} {:>2} {:>2} {:>12.1} {:>9.4} {:>8.3} {:>13.4e}",
            id.label(),
            report.n,
            report.m,
            report.ensemble_makespan,
            mean_e,
            mean_cp,
            f
        );
        if id.build().n() == 2 {
            match &best {
                Some((_, fb)) if *fb >= f => {}
                _ => best = Some((id.label().to_string(), f)),
            }
        }
    }

    if let Some((label, f)) = best {
        println!(
            "\nbest two-member configuration by F(P^U,A,P): {label} ({f:.3e}) — \
             co-locating each simulation with its own analyses wins, as the paper concludes."
        );
    }
}
