//! Compare the DTL's staging tiers with a real producer/consumer pair:
//! DIMES-like in-memory staging, a buffered (burst-buffer-like) queue,
//! and the parallel file system — the storage hierarchy of the paper's
//! Figure 2.
//!
//! ```text
//! cargo run --release --example staging_tiers
//! ```

use bytes::Bytes;
use insitu_ensembles::dtl::protocol::ReaderId;
use insitu_ensembles::dtl::staging::SyncStaging;
use insitu_ensembles::dtl::{staging, Chunk, VariableSpec};
use std::sync::Arc;
use std::time::Instant;

const STEPS: u64 = 64;
const CHUNK_BYTES: usize = 1 << 20; // 1 MiB frames

fn drive<B: insitu_ensembles::dtl::staging::ChunkStore + 'static>(
    staging: Arc<SyncStaging<B>>,
) -> (f64, u64) {
    let var = staging
        .register(VariableSpec { name: "trajectory".into(), expected_readers: 1, home_node: 0 })
        .expect("register");
    let started = Instant::now();
    let producer = {
        let staging = Arc::clone(&staging);
        std::thread::spawn(move || {
            let payload = Bytes::from(vec![7u8; CHUNK_BYTES]);
            for step in 0..STEPS {
                staging.put(Chunk::new(var, step, 0, "raw", payload.clone())).expect("put");
            }
        })
    };
    let mut bytes = 0u64;
    for step in 0..STEPS {
        bytes += staging.get(var, step, ReaderId(0)).expect("get").len() as u64;
    }
    producer.join().expect("producer");
    (started.elapsed().as_secs_f64(), bytes)
}

fn main() {
    println!("staging tiers under the synchronous in situ protocol");
    println!("=====================================================\n");
    println!("{STEPS} steps of {} KiB chunks, one producer, one consumer\n", CHUNK_BYTES / 1024);

    let (t_mem, b) = drive(Arc::new(staging::dimes()));
    println!(
        "in-memory (DIMES-like, capacity 1): {:>8.2} ms  ({:.1} MiB/s)",
        t_mem * 1e3,
        b as f64 / t_mem / (1024.0 * 1024.0)
    );

    let (t_buf, b) = drive(Arc::new(staging::burst_buffer(4)));
    println!(
        "in-memory buffered (capacity 4):    {:>8.2} ms  ({:.1} MiB/s)",
        t_buf * 1e3,
        b as f64 / t_buf / (1024.0 * 1024.0)
    );

    let dir = std::env::temp_dir().join(format!("staging-tiers-{}", std::process::id()));
    let (t_pfs, b) = drive(Arc::new(staging::pfs(&dir).expect("pfs staging")));
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "parallel file system (real files):  {:>8.2} ms  ({:.1} MiB/s)",
        t_pfs * 1e3,
        b as f64 / t_pfs / (1024.0 * 1024.0)
    );

    println!(
        "\nmemory staging is {:.1}x faster than the file system here — the gap in situ \
         processing exploits.",
        t_pfs / t_mem
    );
}
