//! `ensemble` — command-line front end to the workflow-ensemble library.
//!
//! ```text
//! ensemble run C1.5 [--steps N] [--jitter J] [--gantt] [--csv DIR] [--json FILE]
//! ensemble run experiment.json [...]
//! ensemble predict C2.8
//! ensemble sweep
//! ensemble advise --members N --k K --nodes M [--cores 32]
//! ensemble energy C1.5 [--cap WATTS]
//! ensemble example-spec
//! ensemble list
//! ```

use std::collections::HashMap;

use insitu_ensembles::measurement::{self, GanttOptions};
use insitu_ensembles::model::{ConfigId, IndicatorPath, MemberInputs};
use insitu_ensembles::prelude::*;
use insitu_ensembles::runtime::{build_report, ExperimentSpec};
use insitu_ensembles::scheduling;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("predict") => cmd_predict(&args[1..]),
        Some("sweep") => cmd_sweep(),
        Some("advise") => cmd_advise(&args[1..]),
        Some("energy") => cmd_energy(&args[1..]),
        Some("diagnose") => cmd_diagnose(&args[1..]),
        Some("example-spec") => {
            println!("{}", ExperimentSpec::example().to_json());
            0
        }
        Some("list") => {
            for id in ConfigId::all() {
                let spec = id.build();
                println!("{:<6} N={} M={}", id.label(), spec.n(), spec.num_nodes());
            }
            0
        }
        _ => {
            eprintln!(
                "usage: ensemble <run|predict|sweep|advise|energy|diagnose|example-spec|list> [...]\n\
                 see the module docs of src/bin/ensemble.rs for flags"
            );
            2
        }
    };
    std::process::exit(code);
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn parse_config(label: &str) -> Option<ConfigId> {
    // Accept "C1.5", "c1_5", "Cc", "C_f", … — punctuation-insensitive.
    let canon = |s: &str| {
        s.chars().filter(|c| c.is_ascii_alphanumeric()).collect::<String>().to_ascii_lowercase()
    };
    let wanted = canon(label);
    ConfigId::all().into_iter().find(|id| canon(id.label()) == wanted)
}

/// Builds the run configuration from either a paper config label or a
/// JSON experiment file.
fn load_run(target: &str, args: &[String]) -> Result<(String, SimRunConfig), String> {
    let mut cfg = if let Some(id) = parse_config(target) {
        (id.label().to_string(), SimRunConfig::paper(id.build()))
    } else {
        let json = std::fs::read_to_string(target).map_err(|e| {
            format!("'{target}' is neither a config label nor a readable file: {e}")
        })?;
        let spec = ExperimentSpec::from_json(&json).map_err(|e| e.to_string())?;
        let run = spec.to_run_config().map_err(|e| e.to_string())?;
        (spec.name, run)
    };
    if let Some(steps) = flag_value(args, "--steps") {
        cfg.1.n_steps = steps.parse().map_err(|e| format!("--steps: {e}"))?;
    }
    if let Some(jitter) = flag_value(args, "--jitter") {
        cfg.1.jitter = jitter.parse().map_err(|e| format!("--jitter: {e}"))?;
    }
    if let Some(cap) = flag_value(args, "--cap") {
        cfg.1.power_cap_watts = Some(cap.parse().map_err(|e| format!("--cap: {e}"))?);
    }
    Ok(cfg)
}

fn cmd_run(args: &[String]) -> i32 {
    let Some(target) = args.first() else {
        eprintln!("run: missing config label or experiment file");
        return 2;
    };
    let (label, run_cfg) = match load_run(target, args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("run: {e}");
            return 1;
        }
    };
    let spec = run_cfg.spec.clone();
    let exec = match run_simulated(&run_cfg) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("run failed: {e}");
            return 1;
        }
    };
    let report = match build_report(&label, &spec, &exec, run_cfg.n_steps, WarmupPolicy::default())
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("report failed: {e}");
            return 1;
        }
    };
    println!("{}", report.to_table());

    // The full indicator per member plus F.
    let values: Vec<f64> = report
        .members
        .iter()
        .zip(&spec.members)
        .map(|(mr, ms)| {
            insitu_ensembles::model::indicator(
                &MemberInputs::from_specs(ms, &spec, mr.efficiency),
                &IndicatorPath::uap(),
            )
        })
        .collect();
    println!("F(P^U,A,P) = {:.4e}", objective(&values));
    let lost: u64 = report.members.iter().map(|m| m.lost_frames).sum();
    if lost > 0 {
        println!("lost frames: {lost}");
    }

    if has_flag(args, "--gantt") {
        let horizon = exec
            .trace
            .intervals()
            .iter()
            .map(|i| i.end)
            .fold(0.0f64, f64::max)
            .min(report.members[0].sigma_star * 4.0);
        println!(
            "\n{}",
            measurement::render_gantt(
                &exec.trace,
                &GanttOptions { width: 100, window: Some((0.0, horizon)) }
            )
        );
    }
    if let Some(dir) = flag_value(args, "--csv") {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("--csv: {e}");
            return 1;
        }
        let base = std::path::Path::new(dir);
        let writes = [
            ("members.csv", measurement::members_csv(&[&report])),
            ("components.csv", measurement::components_csv(&[&report])),
            ("trace.csv", measurement::trace_csv(&exec.trace)),
        ];
        for (name, body) in writes {
            if let Err(e) = std::fs::write(base.join(name), body) {
                eprintln!("--csv {name}: {e}");
                return 1;
            }
        }
        println!("wrote members.csv, components.csv, trace.csv to {dir}");
    }
    if let Some(path) = flag_value(args, "--json") {
        match serde_json::to_string_pretty(&report) {
            Ok(body) => {
                if let Err(e) = std::fs::write(path, body) {
                    eprintln!("--json: {e}");
                    return 1;
                }
                println!("wrote report to {path}");
            }
            Err(e) => {
                eprintln!("--json: {e}");
                return 1;
            }
        }
    }
    0
}

fn cmd_predict(args: &[String]) -> i32 {
    let Some(target) = args.first() else {
        eprintln!("predict: missing config label or experiment file");
        return 2;
    };
    let (label, run_cfg) = match load_run(target, args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("predict: {e}");
            return 1;
        }
    };
    match insitu_ensembles::runtime::predict(&run_cfg) {
        Ok(p) => {
            println!("{label}: predicted ensemble makespan {:.2}s", p.ensemble_makespan);
            for (i, m) in p.members.iter().enumerate() {
                println!(
                    "  EM{}: sigma* {:.3}s, E {:.4}, CP {:.3}, makespan {:.2}s",
                    i + 1,
                    m.sigma_star,
                    m.efficiency,
                    m.cp,
                    m.makespan
                );
            }
            0
        }
        Err(e) => {
            eprintln!("predict failed: {e}");
            1
        }
    }
}

fn cmd_sweep() -> i32 {
    match core_sweep(&CoreSweepConfig::paper()) {
        Ok(sweep) => {
            println!("cores  S*+W*     R*+A*     sigma*    E       Eq.4");
            for p in &sweep.points {
                println!(
                    "{:>5} {:>8.2}s {:>8.2}s {:>8.2}s {:>7.4} {}",
                    p.analysis_cores,
                    p.sim_busy,
                    p.ana_busy,
                    p.sigma_star,
                    p.efficiency,
                    if p.satisfies_eq4 { "yes" } else { "no" }
                );
            }
            println!("recommended analysis cores: {}", sweep.recommended_cores);
            0
        }
        Err(e) => {
            eprintln!("sweep failed: {e}");
            1
        }
    }
}

fn cmd_advise(args: &[String]) -> i32 {
    let parse = |name: &str, default: usize| -> usize {
        flag_value(args, name).and_then(|v| v.parse().ok()).unwrap_or(default)
    };
    let members = parse("--members", 2);
    let k = parse("--k", 1);
    let nodes = parse("--nodes", 3);
    let cores = parse("--cores", 32) as u32;
    match scheduling::recommend_with_core_sweep(
        members,
        16,
        k,
        scheduling::NodeBudget { max_nodes: nodes, cores_per_node: cores },
    ) {
        Ok(rec) => {
            println!("{}", rec.rationale);
            for (i, m) in rec.spec.members.iter().enumerate() {
                println!(
                    "  EM{}: Sim@{:?}, Ana@{:?}",
                    i + 1,
                    m.simulation.nodes,
                    m.analyses.iter().map(|a| a.nodes.clone()).collect::<Vec<_>>()
                );
            }
            0
        }
        Err(e) => {
            eprintln!("advise failed: {e}");
            1
        }
    }
}

fn cmd_diagnose(args: &[String]) -> i32 {
    let Some(target) = args.first() else {
        eprintln!("diagnose: missing config label or experiment file");
        return 2;
    };
    let (label, run_cfg) = match load_run(target, args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("diagnose: {e}");
            return 1;
        }
    };
    let spec = run_cfg.spec.clone();
    let exec = match run_simulated(&run_cfg) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("diagnose run failed: {e}");
            return 1;
        }
    };
    let report = match build_report(&label, &spec, &exec, run_cfg.n_steps, WarmupPolicy::default())
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("diagnose report failed: {e}");
            return 1;
        }
    };
    let findings = insitu_ensembles::runtime::diagnose(
        &report,
        &insitu_ensembles::runtime::DiagnosticConfig::default(),
    );
    println!("{label}:");
    print!("{}", insitu_ensembles::runtime::render_findings(&findings));
    0
}

fn cmd_energy(args: &[String]) -> i32 {
    let Some(target) = args.first() else {
        eprintln!("energy: missing config label");
        return 2;
    };
    let (label, run_cfg) = match load_run(target, args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("energy: {e}");
            return 1;
        }
    };
    let exec = match run_simulated(&run_cfg) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("energy run failed: {e}");
            return 1;
        }
    };
    let cores: HashMap<_, _> =
        exec.allocations.iter().map(|(c, a)| (*c, a.total_cores())).collect();
    let nodes: HashMap<_, _> = exec.allocations.iter().map(|(c, a)| (*c, a.node)).collect();
    let report = measurement::run_energy(&exec.trace, &run_cfg.power_model, &cores, &nodes);
    println!(
        "{label}: total {:.1} MJ over {:.1}s (average {:.0} W)",
        report.total_joules / 1e6,
        report.span_seconds,
        report.average_watts()
    );
    let mut components: Vec<_> = report.per_component.iter().collect();
    components.sort_by_key(|(c, _)| **c);
    for (c, joules) in components {
        println!("  {c}: {:.2} MJ", joules / 1e6);
    }
    for (node, watts) in &exec.node_power_watts {
        println!("  node {node}: steady draw {watts:.0} W");
    }
    0
}
