//! `ensemble` — command-line front end to the workflow-ensemble library.
//!
//! ```text
//! ensemble run C1.5 [--steps N] [--jitter J] [--gantt] [--csv DIR] [--json FILE]
//! ensemble run experiment.json [...]
//! ensemble run C1.5 --threaded [--steps N] [--fault-plan SPEC]
//!                              [--retry-attempts N] [--restarts N]
//! ensemble predict C2.8
//! ensemble sweep
//! ensemble advise --members N --k K --nodes M [--cores 32]
//! ensemble energy C1.5 [--cap WATTS]
//! ensemble serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]
//!                [--scan-workers N]
//!                [--journal FILE] [--journal-fsync per-record|batched[:N]]
//!                [--journal-max-bytes N]
//!                [--cosched] [--cosched-nodes M] [--cosched-cores C]
//!                [--cosched-queue N] [--cosched-no-backfill]
//!                [--tenant-quota NAME=SLOTS ...] [--tenant-weight NAME=W ...]
//!                [--tenant-default-quota N] [--svc-fault SPEC]
//! ensemble serve --standby-of HOST:PORT --journal FILE [--addr HOST:PORT]
//!                [--auto-promote] [--heartbeat-ms MS] [--dead-after N]
//! ensemble serve --follow FILE [--addr HOST:PORT] [--auto-promote]
//!                [--heartbeat-ms MS] [--dead-after N]
//! ensemble query score --members N --k K --nodes M [--top-k K] [--workers N]
//!                      [--addr HOST:PORT] [--progress] [--progress-every N]
//!                      [--progress-every-ms MS] [...]
//! ensemble query run C1.5 [--addr HOST:PORT] [--steps N] [--seed S]
//!                         [--progress] [...]
//! ensemble query submit --members N --k K [--sim-cores C] [--ana-cores C]
//!                       [--steps N] [--seed S] [--tenant NAME] [--progress]
//!                       [--addr HOST:PORT]
//! ensemble query attach --job ID [--addr HOST:PORT]
//! ensemble query metrics [--addr HOST:PORT]
//! ensemble example-spec
//! ensemble list
//! ```
//!
//! Every `query` kind accepts `--tenant NAME` to tag the request for
//! per-tenant accounting in the service metrics, and `--addr` takes a
//! comma-separated address list (primary first, standbys after) to
//! fail over automatically.

use std::collections::HashMap;

use insitu_ensembles::measurement::{self, GanttOptions};
use insitu_ensembles::model::{ConfigId, IndicatorPath, MemberInputs};
use insitu_ensembles::prelude::*;
use insitu_ensembles::runtime::{build_report, ExperimentSpec};
use insitu_ensembles::scheduling;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("predict") => cmd_predict(&args[1..]),
        Some("sweep") => cmd_sweep(),
        Some("advise") => cmd_advise(&args[1..]),
        Some("energy") => cmd_energy(&args[1..]),
        Some("diagnose") => cmd_diagnose(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("example-spec") => {
            println!("{}", ExperimentSpec::example().to_json());
            0
        }
        Some("list") => {
            for id in ConfigId::all() {
                let spec = id.build();
                println!("{:<6} N={} M={}", id.label(), spec.n(), spec.num_nodes());
            }
            0
        }
        _ => {
            eprintln!(
                "usage: ensemble <run|predict|sweep|advise|energy|diagnose|serve|query|example-spec|list> [...]\n\
                 see the module docs of src/bin/ensemble.rs for flags"
            );
            2
        }
    };
    std::process::exit(code);
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

/// Every value of a repeatable flag, in order of appearance
/// (`--tenant-quota a=4 --tenant-quota b=2`).
fn flag_values<'a>(args: &'a [String], name: &str) -> Vec<&'a str> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == name)
        .filter_map(|(i, _)| args.get(i + 1))
        .map(String::as_str)
        .collect()
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn parse_config(label: &str) -> Option<ConfigId> {
    // Accept "C1.5", "c1_5", "Cc", "C_f", … — punctuation-insensitive.
    let canon = |s: &str| {
        s.chars().filter(|c| c.is_ascii_alphanumeric()).collect::<String>().to_ascii_lowercase()
    };
    let wanted = canon(label);
    ConfigId::all().into_iter().find(|id| canon(id.label()) == wanted)
}

/// Builds the run configuration from either a paper config label or a
/// JSON experiment file.
fn load_run(target: &str, args: &[String]) -> Result<(String, SimRunConfig), String> {
    let mut cfg = if let Some(id) = parse_config(target) {
        (id.label().to_string(), SimRunConfig::paper(id.build()))
    } else {
        let json = std::fs::read_to_string(target).map_err(|e| {
            format!("'{target}' is neither a config label nor a readable file: {e}")
        })?;
        let spec = ExperimentSpec::from_json(&json).map_err(|e| e.to_string())?;
        let run = spec.to_run_config().map_err(|e| e.to_string())?;
        (spec.name, run)
    };
    if let Some(steps) = flag_value(args, "--steps") {
        cfg.1.n_steps = steps.parse().map_err(|e| format!("--steps: {e}"))?;
    }
    if let Some(jitter) = flag_value(args, "--jitter") {
        cfg.1.jitter = jitter.parse().map_err(|e| format!("--jitter: {e}"))?;
    }
    if let Some(cap) = flag_value(args, "--cap") {
        cfg.1.power_cap_watts = Some(cap.parse().map_err(|e| format!("--cap: {e}"))?);
    }
    Ok(cfg)
}

fn cmd_run(args: &[String]) -> i32 {
    let Some(target) = args.first() else {
        eprintln!("run: missing config label or experiment file");
        return 2;
    };
    if has_flag(args, "--threaded") {
        return cmd_run_threaded(target, args);
    }
    let (label, run_cfg) = match load_run(target, args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("run: {e}");
            return 1;
        }
    };
    let spec = run_cfg.spec.clone();
    let exec = match run_simulated(&run_cfg) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("run failed: {e}");
            return 1;
        }
    };
    let report = match build_report(&label, &spec, &exec, run_cfg.n_steps, WarmupPolicy::default())
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("report failed: {e}");
            return 1;
        }
    };
    println!("{}", report.to_table());

    // The full indicator per member plus F.
    let values: Vec<f64> = report
        .members
        .iter()
        .zip(&spec.members)
        .map(|(mr, ms)| {
            insitu_ensembles::model::indicator(
                &MemberInputs::from_specs(ms, &spec, mr.efficiency),
                &IndicatorPath::uap(),
            )
        })
        .collect();
    println!("F(P^U,A,P) = {:.4e}", objective(&values));
    let lost: u64 = report.members.iter().map(|m| m.lost_frames).sum();
    if lost > 0 {
        println!("lost frames: {lost}");
    }

    if has_flag(args, "--gantt") {
        let horizon = exec
            .trace
            .intervals()
            .iter()
            .map(|i| i.end)
            .fold(0.0f64, f64::max)
            .min(report.members[0].sigma_star * 4.0);
        println!(
            "\n{}",
            measurement::render_gantt(
                &exec.trace,
                &GanttOptions { width: 100, window: Some((0.0, horizon)) }
            )
        );
    }
    if let Some(dir) = flag_value(args, "--csv") {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("--csv: {e}");
            return 1;
        }
        let base = std::path::Path::new(dir);
        let writes = [
            ("members.csv", measurement::members_csv(&[&report])),
            ("components.csv", measurement::components_csv(&[&report])),
            ("trace.csv", measurement::trace_csv(&exec.trace)),
        ];
        for (name, body) in writes {
            if let Err(e) = std::fs::write(base.join(name), body) {
                eprintln!("--csv {name}: {e}");
                return 1;
            }
        }
        println!("wrote members.csv, components.csv, trace.csv to {dir}");
    }
    if let Some(path) = flag_value(args, "--json") {
        match serde_json::to_string_pretty(&report) {
            Ok(body) => {
                if let Err(e) = std::fs::write(path, body) {
                    eprintln!("--json: {e}");
                    return 1;
                }
                println!("wrote report to {path}");
            }
            Err(e) => {
                eprintln!("--json: {e}");
                return 1;
            }
        }
    }
    0
}

/// `ensemble run <config> --threaded`: run the real-kernel runtime,
/// optionally under a fault plan, and report per-member outcomes plus
/// retry/fault counters alongside the usual report table.
fn cmd_run_threaded(target: &str, args: &[String]) -> i32 {
    use insitu_ensembles::runtime::build_threaded_report;

    let Some(id) = parse_config(target) else {
        eprintln!("run --threaded: '{target}' is not a config label (see `ensemble list`)");
        return 2;
    };
    let mut cfg = ThreadRunConfig {
        spec: id.build(),
        md: MdConfig { atoms_per_side: 5, stride: 10, ..Default::default() },
        analysis_group_size: 32,
        n_steps: 6,
        ..Default::default()
    };
    if let Some(steps) = flag_value(args, "--steps") {
        match steps.parse() {
            Ok(n) => cfg.n_steps = n,
            Err(e) => {
                eprintln!("run --threaded: --steps: {e}");
                return 2;
            }
        }
    }
    if let Some(spec) = flag_value(args, "--fault-plan") {
        match FaultPlan::parse(spec) {
            Ok(plan) => cfg.fault_plan = Some(plan),
            Err(e) => {
                eprintln!("run --threaded: --fault-plan: {e}");
                return 2;
            }
        }
    }
    if let Some(attempts) = flag_value(args, "--retry-attempts") {
        match attempts.parse() {
            Ok(n) => cfg.retry = Some(RetryPolicy::with_attempts(n)),
            Err(e) => {
                eprintln!("run --threaded: --retry-attempts: {e}");
                return 2;
            }
        }
    }
    if let Some(restarts) = flag_value(args, "--restarts") {
        match restarts.parse() {
            Ok(n) => cfg.restart = Some(RestartPolicy { max_restarts: n }),
            Err(e) => {
                eprintln!("run --threaded: --restarts: {e}");
                return 2;
            }
        }
    }

    let spec = cfg.spec.clone();
    let exec = match run_threaded(&cfg) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("run --threaded failed: {e}");
            return 1;
        }
    };
    for (i, outcome) in exec.member_outcomes.iter().enumerate() {
        match outcome {
            MemberOutcome::Completed => println!("EM{}: completed", i + 1),
            MemberOutcome::Restarted { attempts } => {
                println!("EM{}: completed after {attempts} restart(s)", i + 1);
            }
            MemberOutcome::Failed { step, cause } => {
                println!("EM{}: FAILED at step {step}: {cause}", i + 1);
            }
        }
    }
    println!(
        "staging: {} puts, {} gets, {} retries, {} giveups; faults injected: {}",
        exec.staging_stats.puts,
        exec.staging_stats.gets,
        exec.staging_stats.retries,
        exec.staging_stats.giveups,
        exec.fault_stats.total_injected(),
    );
    match build_threaded_report(id.label(), &spec, &exec, cfg.n_steps, WarmupPolicy::default()) {
        Ok(report) => {
            println!("{}", report.to_table());
            if let Some(path) = flag_value(args, "--json") {
                match serde_json::to_string_pretty(&report) {
                    Ok(body) => {
                        if let Err(e) = std::fs::write(path, body) {
                            eprintln!("--json: {e}");
                            return 1;
                        }
                        println!("wrote report to {path}");
                    }
                    Err(e) => {
                        eprintln!("--json: {e}");
                        return 1;
                    }
                }
            }
            if exec.member_outcomes.iter().any(|o| o.is_failed()) {
                1
            } else {
                0
            }
        }
        Err(e) => {
            // Every member failing leaves nothing to report on.
            eprintln!("report failed: {e}");
            1
        }
    }
}

fn cmd_predict(args: &[String]) -> i32 {
    let Some(target) = args.first() else {
        eprintln!("predict: missing config label or experiment file");
        return 2;
    };
    let (label, run_cfg) = match load_run(target, args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("predict: {e}");
            return 1;
        }
    };
    match insitu_ensembles::runtime::predict(&run_cfg) {
        Ok(p) => {
            println!("{label}: predicted ensemble makespan {:.2}s", p.ensemble_makespan);
            for (i, m) in p.members.iter().enumerate() {
                println!(
                    "  EM{}: sigma* {:.3}s, E {:.4}, CP {:.3}, makespan {:.2}s",
                    i + 1,
                    m.sigma_star,
                    m.efficiency,
                    m.cp,
                    m.makespan
                );
            }
            0
        }
        Err(e) => {
            eprintln!("predict failed: {e}");
            1
        }
    }
}

fn cmd_sweep() -> i32 {
    match core_sweep(&CoreSweepConfig::paper()) {
        Ok(sweep) => {
            println!("cores  S*+W*     R*+A*     sigma*    E       Eq.4");
            for p in &sweep.points {
                println!(
                    "{:>5} {:>8.2}s {:>8.2}s {:>8.2}s {:>7.4} {}",
                    p.analysis_cores,
                    p.sim_busy,
                    p.ana_busy,
                    p.sigma_star,
                    p.efficiency,
                    if p.satisfies_eq4 { "yes" } else { "no" }
                );
            }
            println!("recommended analysis cores: {}", sweep.recommended_cores);
            0
        }
        Err(e) => {
            eprintln!("sweep failed: {e}");
            1
        }
    }
}

fn cmd_advise(args: &[String]) -> i32 {
    let parse = |name: &str, default: usize| -> usize {
        flag_value(args, name).and_then(|v| v.parse().ok()).unwrap_or(default)
    };
    let members = parse("--members", 2);
    let k = parse("--k", 1);
    let nodes = parse("--nodes", 3);
    let cores = parse("--cores", 32) as u32;
    match scheduling::recommend_with_core_sweep(
        members,
        16,
        k,
        scheduling::NodeBudget { max_nodes: nodes, cores_per_node: cores },
    ) {
        Ok(rec) => {
            println!("{}", rec.rationale);
            for (i, m) in rec.spec.members.iter().enumerate() {
                println!(
                    "  EM{}: Sim@{:?}, Ana@{:?}",
                    i + 1,
                    m.simulation.nodes,
                    m.analyses.iter().map(|a| a.nodes.clone()).collect::<Vec<_>>()
                );
            }
            0
        }
        Err(e) => {
            eprintln!("advise failed: {e}");
            1
        }
    }
}

fn cmd_diagnose(args: &[String]) -> i32 {
    let Some(target) = args.first() else {
        eprintln!("diagnose: missing config label or experiment file");
        return 2;
    };
    let (label, run_cfg) = match load_run(target, args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("diagnose: {e}");
            return 1;
        }
    };
    let spec = run_cfg.spec.clone();
    let exec = match run_simulated(&run_cfg) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("diagnose run failed: {e}");
            return 1;
        }
    };
    let report = match build_report(&label, &spec, &exec, run_cfg.n_steps, WarmupPolicy::default())
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("diagnose report failed: {e}");
            return 1;
        }
    };
    let findings = insitu_ensembles::runtime::diagnose(
        &report,
        &insitu_ensembles::runtime::DiagnosticConfig::default(),
    );
    println!("{label}:");
    print!("{}", insitu_ensembles::runtime::render_findings(&findings));
    0
}

const DEFAULT_SVC_ADDR: &str = "127.0.0.1:7717";

fn cmd_serve(args: &[String]) -> i32 {
    if flag_value(args, "--standby-of").is_some() || flag_value(args, "--follow").is_some() {
        return cmd_serve_standby(args);
    }
    let addr = flag_value(args, "--addr").unwrap_or(DEFAULT_SVC_ADDR);
    let config = match parse_svc_config(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("serve: {e}");
            return 2;
        }
    };
    run_server(addr, config)
}

/// Everything `serve` and a promoting standby share: worker pool,
/// queue, cache, deadline, journal, co-scheduler, and tenant policy
/// flags folded into one [`SvcConfig`].
fn parse_svc_config(args: &[String]) -> Result<insitu_ensembles::service::SvcConfig, String> {
    use insitu_ensembles::service::SvcConfig;

    let mut config = SvcConfig::default();
    let parse_usize = |name: &str, default: usize| -> Result<usize, String> {
        match flag_value(args, name) {
            Some(v) => v.parse().map_err(|e| format!("{name}: {e}")),
            None => Ok(default),
        }
    };
    config.workers = parse_usize("--workers", config.workers)?;
    config.queue_capacity = parse_usize("--queue", config.queue_capacity)?;
    config.cache_capacity = parse_usize("--cache", config.cache_capacity)?;
    config.scan_workers = parse_usize("--scan-workers", config.scan_workers)?;
    if let Some(ms) = flag_value(args, "--deadline") {
        let ms: u64 = ms.parse().map_err(|e| format!("--deadline: {e}"))?;
        config.default_deadline = Some(std::time::Duration::from_millis(ms));
    }
    if let Some(path) = flag_value(args, "--journal") {
        use insitu_ensembles::service::{FsyncPolicy, JournalConfig};
        let mut journal = JournalConfig::new(path);
        // Score and run retention track the cache so compaction keeps
        // exactly what a restart can re-use.
        journal.retain_scores = config.cache_capacity;
        journal.retain_runs = config.cache_capacity;
        if let Some(policy) = flag_value(args, "--journal-fsync") {
            journal.fsync = match policy.split_once(':') {
                None if policy == "per-record" => FsyncPolicy::PerRecord,
                None if policy == "batched" => FsyncPolicy::default(),
                Some(("batched", n)) => match n.parse::<u32>() {
                    Ok(n) if n > 0 => FsyncPolicy::Batched(n),
                    _ => {
                        return Err(
                            "--journal-fsync batched:N needs a positive integer N".to_string()
                        );
                    }
                },
                _ => {
                    return Err(format!(
                        "--journal-fsync must be 'per-record' or 'batched[:N]', got '{policy}'"
                    ));
                }
            };
        }
        if let Some(bytes) = flag_value(args, "--journal-max-bytes") {
            match bytes.parse::<u64>() {
                Ok(b) if b > 0 => journal.max_bytes = b,
                _ => return Err("--journal-max-bytes needs a positive integer".to_string()),
            }
        }
        if let Some(spec) = flag_value(args, "--svc-fault") {
            journal.fault = Some(insitu_ensembles::service::SvcFaultPlan::parse(spec)?);
        }
        config.journal = Some(journal);
    } else if flag_value(args, "--svc-fault").is_some() {
        return Err("--svc-fault needs --journal (faults hit the durability layer)".to_string());
    }
    if has_flag(args, "--cosched") {
        use insitu_ensembles::service::{CoschedSvcConfig, Workloads};
        let budget = insitu_ensembles::scheduling::NodeBudget {
            max_nodes: match parse_usize("--cosched-nodes", 4) {
                Ok(v) if v > 0 => v,
                _ => return Err("--cosched-nodes needs a positive integer".to_string()),
            },
            cores_per_node: match parse_usize("--cosched-cores", 32) {
                Ok(v) if v > 0 => v as u32,
                _ => return Err("--cosched-cores needs a positive integer".to_string()),
            },
        };
        let mut cosched = CoschedSvcConfig::new(budget);
        cosched.workloads =
            if has_flag(args, "--paper") { Workloads::Paper } else { Workloads::Small };
        if let Some(n) = flag_value(args, "--cosched-queue") {
            match n.parse::<usize>() {
                Ok(n) if n > 0 => cosched.queue_capacity = n,
                _ => return Err("--cosched-queue needs a positive integer".to_string()),
            }
        }
        cosched.backfill = !has_flag(args, "--cosched-no-backfill");
        config.cosched = Some(cosched);
    }
    // NAME=VALUE pairs, repeatable; tags are validated with the same
    // rule the wire decoder applies so a policy can never name a tenant
    // no request could ever carry.
    let parse_tenant_pairs = |flag: &str| -> Result<Vec<(String, u64)>, String> {
        flag_values(args, flag)
            .into_iter()
            .map(|pair| {
                let (name, value) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("{flag} expects NAME=VALUE, got '{pair}'"))?;
                insitu_ensembles::service::protocol::validate_tenant(name)
                    .map_err(|e| format!("{flag}: {e}"))?;
                let value: u64 = value.parse().map_err(|e| format!("{flag} {name}: {e}"))?;
                Ok((name.to_string(), value))
            })
            .collect()
    };
    config.tenant_policy.quotas.extend(parse_tenant_pairs("--tenant-quota")?);
    config.tenant_policy.weights.extend(parse_tenant_pairs("--tenant-weight")?);
    if let Some(n) = flag_value(args, "--tenant-default-quota") {
        match n.parse::<u64>() {
            Ok(n) if n > 0 => config.tenant_policy.default_quota = Some(n),
            _ => return Err("--tenant-default-quota needs a positive integer".to_string()),
        }
    }
    Ok(config)
}

/// Binds and serves until stdin closes, then drains — the tail of
/// `serve`, shared with a promoted standby.
fn run_server(addr: &str, config: insitu_ensembles::service::SvcConfig) -> i32 {
    let journaled = config.journal.as_ref().map(|j| j.path.display().to_string());
    let handle = match insitu_ensembles::service::serve(addr, config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("serve: cannot bind {addr} or open the journal: {e}");
            return 1;
        }
    };
    let m = handle.metrics();
    println!(
        "ensemble service listening on {} ({} workers, queue {}); close stdin for graceful drain",
        handle.addr(),
        handle.service().workers(),
        m.queue_capacity,
    );
    if let Some(path) = journaled {
        println!(
            "journal {path}: replayed {} scores, {} runs ({} lines dropped)",
            m.journal_replayed_scores, m.journal_replayed_runs, m.journal_replay_dropped
        );
    }
    if m.cosched_enabled {
        println!(
            "co-scheduler on: {} open reservations restored, {} cores committed",
            m.cosched_open_reservations, m.cosched_committed_cores
        );
    }
    let policy = &handle.service().config().tenant_policy;
    if policy.is_active() {
        let quotas: Vec<String> = policy.quotas.iter().map(|(n, q)| format!("{n}={q}")).collect();
        let weights: Vec<String> = policy.weights.iter().map(|(n, w)| format!("{n}={w}")).collect();
        println!(
            "tenant policy on: quotas [{}], weights [{}], default quota {}",
            quotas.join(", "),
            weights.join(", "),
            policy.default_quota.map_or("unlimited".to_string(), |q| q.to_string()),
        );
    }
    // Serve until stdin closes (Ctrl-D, or the end of a piped script),
    // then drain: everything already admitted still gets its answer.
    let mut sink = String::new();
    loop {
        sink.clear();
        match std::io::stdin().read_line(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    let m = handle.metrics();
    println!(
        "draining: {} completed, {} rejected, cache hit rate {:.2}",
        m.completed,
        m.rejected,
        m.cache_hit_rate()
    );
    handle.shutdown();
    0
}

/// `serve --standby-of ADDR --journal LOCAL` or `serve --follow FILE`:
/// follow a primary, serve read-only metrics/attach, and optionally
/// (`--auto-promote`) take over once the primary's heartbeats stop.
fn cmd_serve_standby(args: &[String]) -> i32 {
    use insitu_ensembles::service::{JournalConfig, Standby, StandbyConfig, StandbySource};

    let addr = flag_value(args, "--addr").unwrap_or(DEFAULT_SVC_ADDR);
    let source = if let Some(primary) = flag_value(args, "--standby-of") {
        let Some(local) = flag_value(args, "--journal") else {
            eprintln!(
                "serve: --standby-of needs --journal FILE (the local copy records stream into)"
            );
            return 2;
        };
        StandbySource::Primary { addr: primary.to_string(), local: local.into() }
    } else {
        let file = flag_value(args, "--follow").expect("caller checked");
        StandbySource::File(file.into())
    };
    let described = match &source {
        StandbySource::File(path) => format!("following journal {}", path.display()),
        StandbySource::Primary { addr, local } => {
            format!("replicating from {} into {}", addr, local.display())
        }
    };
    let mut standby_config = StandbyConfig::new(source);
    standby_config.serve_addr = Some(addr.to_string());
    if let Some(ms) = flag_value(args, "--heartbeat-ms") {
        match ms.parse::<u64>() {
            Ok(ms) if ms > 0 => standby_config.heartbeat = std::time::Duration::from_millis(ms),
            _ => {
                eprintln!("serve: --heartbeat-ms needs a positive integer");
                return 2;
            }
        }
    }
    if let Some(n) = flag_value(args, "--dead-after") {
        match n.parse::<u32>() {
            Ok(n) if n > 0 => standby_config.dead_after_beats = n,
            _ => {
                eprintln!("serve: --dead-after needs a positive integer (missed heartbeats)");
                return 2;
            }
        }
    }
    let auto_promote = has_flag(args, "--auto-promote");
    let standby = match Standby::start(standby_config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: cannot start standby: {e}");
            return 1;
        }
    };
    println!(
        "ensemble standby listening on {} ({described}); read-only until promoted{}",
        standby.addr().map_or_else(|| addr.to_string(), |a| a.to_string()),
        if auto_promote { "; will auto-promote when the primary dies" } else { "" },
    );
    // Close stdin to stop a supervised standby; with --auto-promote the
    // loop also watches the primary's heartbeats.
    let stdin_closed = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    {
        let stdin_closed = std::sync::Arc::clone(&stdin_closed);
        std::thread::spawn(move || {
            let mut sink = String::new();
            loop {
                sink.clear();
                match std::io::stdin().read_line(&mut sink) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
            }
            stdin_closed.store(true, std::sync::atomic::Ordering::Release);
        });
    }
    loop {
        std::thread::sleep(std::time::Duration::from_millis(100));
        if stdin_closed.load(std::sync::atomic::Ordering::Acquire) {
            let s = standby.status();
            println!(
                "standby stopping: {} records applied, {} runs indexed, epoch {}",
                s.records_applied, s.runs_indexed, s.epoch
            );
            drop(standby);
            return 0;
        }
        if auto_promote && standby.primary_dead() {
            break;
        }
    }
    let status = standby.status();
    println!(
        "primary dead (epoch {}, {} records applied, {} runs indexed): promoting",
        status.epoch, status.records_applied, status.runs_indexed
    );
    // Release the read-only listener and the follower, then start a
    // full server on the same address over the followed journal with
    // the fencing epoch bumped.
    let journal_path = standby.stop();
    let mut config = match parse_svc_config(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("serve: {e}");
            return 2;
        }
    };
    let mut journal =
        config.journal.take().unwrap_or_else(|| JournalConfig::new(journal_path.clone()));
    journal.path = journal_path;
    journal.promote = true;
    config.journal = Some(journal);
    run_server(addr, config)
}

fn cmd_query(args: &[String]) -> i32 {
    use insitu_ensembles::service::{
        FailoverClient, FailoverPolicy, Progress, ProgressBody, ProgressSpec, Request, RequestBody,
        Response, RunRequest, ScoreRequest, SubmitRequest, SvcClient, Workloads,
    };

    let Some(kind) = args.first().map(String::as_str) else {
        eprintln!("query: missing request kind (score|run|submit|attach|metrics)");
        return 2;
    };
    let addr = flag_value(args, "--addr").unwrap_or(DEFAULT_SVC_ADDR);
    let id = flag_value(args, "--id").and_then(|v| v.parse().ok()).unwrap_or(1);
    let deadline = flag_value(args, "--deadline")
        .and_then(|v| v.parse().ok())
        .map(std::time::Duration::from_millis);
    let workloads = if has_flag(args, "--small") { Workloads::Small } else { Workloads::Paper };
    // `--progress` alone opts in at the server's default time cadence;
    // either cadence flag implies the opt-in.
    let every_candidates = flag_value(args, "--progress-every").and_then(|v| v.parse().ok());
    let every_ms = flag_value(args, "--progress-every-ms").and_then(|v| v.parse().ok());
    let progress =
        (has_flag(args, "--progress") || every_candidates.is_some() || every_ms.is_some())
            .then_some(ProgressSpec { every_candidates, every_ms });
    let tenant = flag_value(args, "--tenant").map(str::to_string);
    let parse = |name: &str, default: usize| -> usize {
        flag_value(args, name).and_then(|v| v.parse().ok()).unwrap_or(default)
    };

    let body = match kind {
        "metrics" => RequestBody::Metrics,
        "attach" => {
            let Some(job) = flag_value(args, "--job").and_then(|v| v.parse().ok()) else {
                eprintln!(
                    "query attach: --job ID (the request id of the original run) is required"
                );
                return 2;
            };
            RequestBody::Attach { job }
        }
        "score" => RequestBody::Score(ScoreRequest {
            shape: scheduling::EnsembleShape::uniform(
                parse("--members", 2),
                parse("--sim-cores", 16) as u32,
                parse("--k", 1),
                parse("--ana-cores", 8) as u32,
            ),
            budget: scheduling::NodeBudget {
                max_nodes: parse("--nodes", 3),
                cores_per_node: parse("--cores", 32) as u32,
            },
            top_k: parse("--top-k", 5),
            steps: parse("--steps", 6) as u64,
            workloads,
            workers: parse("--workers", 0),
        }),
        "run" => {
            let Some(target) = args.get(1) else {
                eprintln!("query run: missing config label (e.g. C1.5)");
                return 2;
            };
            let Some(config_id) = parse_config(target) else {
                eprintln!("query run: unknown config label '{target}' (see `ensemble list`)");
                return 2;
            };
            RequestBody::Run(RunRequest {
                spec: config_id.build(),
                steps: parse("--steps", 8) as u64,
                jitter: flag_value(args, "--jitter").and_then(|v| v.parse().ok()).unwrap_or(0.0),
                seed: parse("--seed", 0) as u64,
                workloads,
            })
        }
        "submit" => RequestBody::Submit(SubmitRequest {
            shape: scheduling::EnsembleShape::uniform(
                parse("--members", 2),
                parse("--sim-cores", 16) as u32,
                parse("--k", 1),
                parse("--ana-cores", 8) as u32,
            ),
            steps: parse("--steps", 6) as u64,
            jitter: flag_value(args, "--jitter").and_then(|v| v.parse().ok()).unwrap_or(0.0),
            seed: parse("--seed", 0) as u64,
            workloads,
        }),
        other => {
            eprintln!("query: unknown request kind '{other}' (score|run|submit|attach|metrics)");
            return 2;
        }
    };
    let request = Request { id, deadline, progress, tenant, body };

    // Progress frames paint a live status line on stderr (stdout stays
    // clean for the final result, `--json` included).
    let live = |text: String| {
        use std::io::Write;
        eprint!("\r\x1b[2K{text}");
        let _ = std::io::stderr().flush();
    };
    let on_progress = |p: &Progress| match &p.body {
        ProgressBody::Score { candidates_scanned, best_objective, workers } => {
            let best = match best_objective {
                Some(b) => format!("{b:.4e}"),
                None => "-".to_string(),
            };
            live(format!(
                "scanned {candidates_scanned} candidates on {workers} workers, best {best}"
            ));
        }
        ProgressBody::Run { steps, member_steps } => {
            live(format!("step {steps} (members at {member_steps:?})"));
        }
        ProgressBody::Submit { queue_depth, assignment } => match (queue_depth, assignment) {
            (Some(depth), _) => live(format!("queued behind {depth} ensembles")),
            (_, Some(nodes)) => live(format!("placed on nodes {nodes:?}, starting")),
            _ => {}
        },
    };
    // `--addr` takes a comma-separated list (primary first, standbys
    // after); more than one address engages the failover client.
    let addrs: Vec<String> =
        addr.split(',').map(str::trim).filter(|s| !s.is_empty()).map(str::to_string).collect();
    let response = if addrs.len() > 1 {
        let mut client = FailoverClient::new(addrs, FailoverPolicy::default());
        client.request_streaming(&request, |p| on_progress(p))
    } else {
        match SvcClient::connect(addr) {
            Ok(mut client) => client.request_streaming(&request, |p| on_progress(p)),
            Err(e) => {
                eprintln!("query: cannot connect to {addr}: {e} (is `ensemble serve` running?)");
                return 1;
            }
        }
    };
    if request.progress.is_some() {
        // End the live line before printing the result.
        eprintln!();
    }
    let response = match response {
        Ok(r) => r,
        Err(e) => {
            eprintln!("query: {e}");
            return 1;
        }
    };
    if has_flag(args, "--json") {
        println!("{}", response.to_json());
        return match response {
            Response::Error { .. } => 1,
            Response::Overloaded { .. } => 3,
            _ => 0,
        };
    }
    match response {
        Response::ScoreResult {
            placements,
            cached,
            elapsed_ms,
            scan_workers,
            candidates_scanned,
            ..
        } => {
            println!(
                "{} placements ({}; {:.2} ms)",
                placements.len(),
                if cached {
                    "cached".to_string()
                } else {
                    format!("{candidates_scanned} candidates scanned on {scan_workers} workers")
                },
                elapsed_ms
            );
            println!("rank  nodes  objective     makespan  Eq.4  assignment");
            for (rank, p) in placements.iter().enumerate() {
                println!(
                    "{:>4} {:>6} {:>10.4e} {:>10.2}s  {:>4}  {:?}",
                    rank + 1,
                    p.nodes_used,
                    p.objective,
                    p.ensemble_makespan,
                    if p.eq4_satisfied { "yes" } else { "no" },
                    p.assignment
                );
            }
            0
        }
        Response::SubmitResult {
            assignment,
            objective,
            nodes_used,
            backfilled,
            queue_wait_ms,
            residual,
            ensemble_makespan,
            members,
            elapsed_ms,
            ..
        } => {
            println!(
                "placed on {nodes_used} node(s) {assignment:?} (objective {objective:.4e}{})",
                if backfilled { ", backfilled" } else { "" }
            );
            println!(
                "queue wait {queue_wait_ms:.1} ms; residual cores after placement {residual:?}"
            );
            println!("ensemble makespan {ensemble_makespan:.2}s ({elapsed_ms:.2} ms)");
            for (i, m) in members.iter().enumerate() {
                println!(
                    "  EM{}: sigma* {:.3}s, E {:.4}, CP {:.3}, makespan {:.2}s",
                    i + 1,
                    m.sigma_star,
                    m.efficiency,
                    m.cp,
                    m.makespan
                );
            }
            0
        }
        Response::RunResult { ensemble_makespan, members, elapsed_ms, .. } => {
            println!("ensemble makespan {ensemble_makespan:.2}s ({elapsed_ms:.2} ms)");
            for (i, m) in members.iter().enumerate() {
                println!(
                    "  EM{}: sigma* {:.3}s, E {:.4}, CP {:.3}, makespan {:.2}s",
                    i + 1,
                    m.sigma_star,
                    m.efficiency,
                    m.cp,
                    m.makespan
                );
            }
            0
        }
        Response::Metrics { rows, .. } => {
            for (name, value) in rows {
                println!("{name} {value}");
            }
            0
        }
        Response::Overloaded { retry_after_ms, .. } => {
            eprintln!("service overloaded; retry after {retry_after_ms} ms");
            3
        }
        Response::Error { kind, message, .. } => {
            eprintln!("request failed ({}): {message}", kind.tag());
            1
        }
    }
}

fn cmd_energy(args: &[String]) -> i32 {
    let Some(target) = args.first() else {
        eprintln!("energy: missing config label");
        return 2;
    };
    let (label, run_cfg) = match load_run(target, args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("energy: {e}");
            return 1;
        }
    };
    let exec = match run_simulated(&run_cfg) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("energy run failed: {e}");
            return 1;
        }
    };
    let cores: HashMap<_, _> =
        exec.allocations.iter().map(|(c, a)| (*c, a.total_cores())).collect();
    let nodes: HashMap<_, _> = exec.allocations.iter().map(|(c, a)| (*c, a.node)).collect();
    let report = measurement::run_energy(&exec.trace, &run_cfg.power_model, &cores, &nodes);
    println!(
        "{label}: total {:.1} MJ over {:.1}s (average {:.0} W)",
        report.total_joules / 1e6,
        report.span_seconds,
        report.average_watts()
    );
    let mut components: Vec<_> = report.per_component.iter().collect();
    components.sort_by_key(|(c, _)| **c);
    for (c, joules) in components {
        println!("  {c}: {:.2} MJ", joules / 1e6);
    }
    for (node, watts) in &exec.node_power_watts {
        println!("  node {node}: steady draw {watts:.0} W");
    }
    0
}
