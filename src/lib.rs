//! # insitu-ensembles
//!
//! A complete Rust implementation of *"Assessing Resource Provisioning
//! and Allocation of Ensembles of In Situ Workflows"* (Do, Pottier,
//! Ferreira da Silva, Caíno-Lores, Taufer, Deelman — ICPP Workshops '21,
//! DOI 10.1145/3458744.3474051): the formal workflow-ensemble model, its
//! multi-stage performance indicators, the in situ runtime they were
//! evaluated on, and a simulated Cori-class platform that reproduces the
//! paper's experiments on a laptop.
//!
//! ## Crate map
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`model`] | `ensemble-core` | the paper's contribution: stage model, Eqs. 1–9, Tables 2/4 |
//! | [`runtime`] | `runtime` | Figure 2 runtime: simulated (DES) and threaded (real kernels) execution |
//! | [`dtl`] | `dtl` | data transport layer: chunks, DIMES-like staging, protocol |
//! | [`kernels`] | `kernels` | LJ molecular dynamics + bipartite-eigenvalue analysis + profiles |
//! | [`platform`] | `hpc-platform` | Cori-like machine model with co-location interference |
//! | [`measurement`] | `metrics` | traces, Table 1 metrics, makespans, reports |
//! | [`scheduling`] | `scheduler` | §3.4 core sweep + indicator-guided placement search |
//! | [`service`] | `svc` | concurrent provisioning-query service (admission control, score cache, TCP front end) |
//! | [`des`] | `sim-des` | deterministic discrete-event engine |
//!
//! ## Quickstart
//!
//! ```
//! use insitu_ensembles::prelude::*;
//!
//! // Run the paper's best configuration (C1.5: each member co-located)
//! // on the simulated platform, laptop-scale.
//! let report = EnsembleRunner::paper_config(ConfigId::C1_5)
//!     .small_scale()
//!     .steps(8)
//!     .run()
//!     .expect("simulated run");
//! assert_eq!(report.members.len(), 2);
//! for member in &report.members {
//!     assert!(member.efficiency > 0.0 && member.efficiency <= 1.0);
//!     assert_eq!(member.cp, 1.0); // fully co-located
//! }
//! ```

pub use dtl;
pub use ensemble_core as model;
pub use hpc_platform as platform;
pub use kernels;
pub use metrics as measurement;
pub use runtime;
pub use scheduler as scheduling;
pub use sim_des as des;
pub use svc as service;

/// The most common imports in one place.
pub mod prelude {
    pub use dtl::{
        DtlReader, DtlWriter, FaultAction, FaultInjector, FaultOp, FaultPlan, FaultRule,
        InMemoryStaging, MemberKill, ReaderId, RetryPolicy, VariableSpec,
    };
    pub use ensemble_core::{
        aggregate, efficiency, indicator, makespan, objective, placement_indicator, sigma_star,
        Aggregation, ComponentRef, ComponentSpec, ConfigId, CouplingScenario, EnsembleSpec,
        IndicatorPath, MemberInputs, MemberSpec, MemberStageTimes, StageKind, WarmupPolicy,
    };
    pub use hpc_platform::{BindPolicy, InterferenceModel, Platform, PowerModel, Workload};
    pub use kernels::{EigenAnalysis, Frame, MdConfig, MdSimulation};
    pub use metrics::{EnsembleReport, ExecutionTrace, TraceRecorder};
    pub use runtime::{
        predict, run_simulated, run_threaded, run_threaded_in_transit, CouplingMode,
        EnsembleRunner, MemberOutcome, RestartPolicy, SimRunConfig, ThreadRunConfig, WorkloadMap,
    };
    pub use scheduler::{
        anneal_placement, core_sweep, exhaustive_search, pareto_front, recommend_placement,
        AnnealingConfig, CoreSweepConfig, EnsembleShape, NodeBudget, SearchConfig,
    };
    pub use svc::{serve, Service, SvcClient, SvcConfig};
}
